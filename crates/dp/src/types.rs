//! Core DP value types.

use serde::{Deserialize, Serialize};

/// An (ε, δ) differential-privacy guarantee (paper Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DpGuarantee {
    /// Multiplicative privacy-loss bound; must be positive and finite.
    pub epsilon: f64,
    /// Additive failure probability; must lie in `[0, 1)`.
    pub delta: f64,
}

impl DpGuarantee {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics on a non-positive/non-finite ε or a δ outside `[0, 1)`.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon > 0.0,
            "DpGuarantee: epsilon must be positive and finite, got {epsilon}"
        );
        assert!(
            (0.0..1.0).contains(&delta),
            "DpGuarantee: delta must be in [0, 1), got {delta}"
        );
        Self { epsilon, delta }
    }

    /// A pure ε-DP guarantee (δ = 0).
    pub fn pure(epsilon: f64) -> Self {
        Self::new(epsilon, 0.0)
    }

    /// Naive sequential composition: `(Σε, Σδ)` (paper §2.1).
    pub fn compose_sequential(guarantees: &[DpGuarantee]) -> DpGuarantee {
        assert!(!guarantees.is_empty(), "compose_sequential: empty sequence");
        DpGuarantee {
            epsilon: guarantees.iter().map(|g| g.epsilon).sum(),
            delta: guarantees
                .iter()
                .map(|g| g.delta)
                .sum::<f64>()
                .min(1.0 - f64::EPSILON),
        }
    }

    /// Split into `k` equal per-step guarantees under sequential composition.
    pub fn split_sequential(&self, k: usize) -> DpGuarantee {
        assert!(k > 0, "split_sequential: k must be positive");
        DpGuarantee {
            epsilon: self.epsilon / k as f64,
            delta: self.delta / k as f64,
        }
    }
}

/// Which neighbouring-dataset relation is in force (paper §2.1).
///
/// Under unbounded DP, `D` and `D'` differ by the *presence* of one record
/// (|D| = |D′| + 1 in this workspace's convention); under bounded DP they
/// differ by the *value* of one record (equal sizes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeighborMode {
    /// Add/remove one record.
    Unbounded,
    /// Replace one record.
    Bounded,
}

impl std::fmt::Display for NeighborMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NeighborMode::Unbounded => write!(f, "unbounded"),
            NeighborMode::Bounded => write!(f, "bounded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guarantee_construction() {
        let g = DpGuarantee::new(1.5, 1e-5);
        assert_eq!(g.epsilon, 1.5);
        assert_eq!(g.delta, 1e-5);
        let p = DpGuarantee::pure(0.1);
        assert_eq!(p.delta, 0.0);
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_rejected() {
        DpGuarantee::new(0.0, 1e-5);
    }

    #[test]
    #[should_panic(expected = "delta must be in")]
    fn delta_one_rejected() {
        DpGuarantee::new(1.0, 1.0);
    }

    #[test]
    fn sequential_composition_sums() {
        let g = DpGuarantee::compose_sequential(&[
            DpGuarantee::new(0.5, 1e-6),
            DpGuarantee::new(1.0, 2e-6),
        ]);
        assert!((g.epsilon - 1.5).abs() < 1e-12);
        assert!((g.delta - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn split_then_compose_is_identity() {
        let g = DpGuarantee::new(2.2, 1e-3);
        let per = g.split_sequential(30);
        let back = DpGuarantee::compose_sequential(&vec![per; 30]);
        assert!((back.epsilon - g.epsilon).abs() < 1e-9);
        assert!((back.delta - g.delta).abs() < 1e-12);
    }

    #[test]
    fn neighbor_mode_display() {
        assert_eq!(NeighborMode::Bounded.to_string(), "bounded");
        assert_eq!(NeighborMode::Unbounded.to_string(), "unbounded");
    }
}

//! The privacy ledger: live, per-release ε′ accounting on top of
//! [`RdpAccountant`].
//!
//! The accountant answers "what does this composition cost?" once, at the
//! end. Auditing (§6.4 of the paper) wants to *watch* the cost evolve: ε′
//! after every noisy release, against the analytic ε budget the run claims.
//! [`PrivacyLedger`] wraps the accountant so every `add_*` both composes
//! the release *and* emits a structured [`dpaudit_obs::Event::Ledger`]
//! carrying the step index, the release's local sensitivity, ε′-so-far at
//! the optimal RDP order, and the budget — a live stream any installed
//! sink (metrics registry, JSONL trace, Prometheus endpoint) can consume.
//!
//! With no sink installed the emission is one relaxed atomic load, so the
//! ledger is safe to use on hot audit paths; the per-step ε′ conversion
//! itself is a scan over the RDP order grid (~40 entries) per release.

use crate::rdp::RdpAccountant;
use dpaudit_obs as obs;

/// What one ledger step recorded: the composition state right after a
/// noisy release was added.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerEntry {
    /// 1-based index of the release in the composition.
    pub step: usize,
    /// The local sensitivity attributed to the release.
    pub local_sensitivity: f64,
    /// ε′ of the whole composition so far at `delta`.
    pub eps_prime: f64,
    /// The RDP order at which `eps_prime` was attained.
    pub order: f64,
}

/// An [`RdpAccountant`] that narrates itself: every composed release
/// yields a [`LedgerEntry`] and emits a ledger event to the installed
/// observability sink.
#[derive(Debug, Clone)]
pub struct PrivacyLedger {
    accountant: RdpAccountant,
    delta: f64,
    eps_budget: Option<f64>,
}

impl PrivacyLedger {
    /// A ledger converting at `delta`, with no known ε budget.
    ///
    /// # Panics
    /// Panics for δ outside `(0, 1)`.
    pub fn new(delta: f64) -> Self {
        Self::build(delta, None)
    }

    /// A ledger converting at `delta`, auditing against the analytic
    /// budget `eps_budget` (carried on every emitted event so exporters
    /// can draw the ε′-vs-ε comparison without extra context).
    ///
    /// # Panics
    /// Panics for δ outside `(0, 1)` or a non-positive budget.
    pub fn with_budget(delta: f64, eps_budget: f64) -> Self {
        assert!(
            eps_budget > 0.0,
            "PrivacyLedger: eps budget must be positive"
        );
        Self::build(delta, Some(eps_budget))
    }

    fn build(delta: f64, eps_budget: Option<f64>) -> Self {
        assert!(
            delta > 0.0 && delta < 1.0,
            "PrivacyLedger: delta must be in (0,1)"
        );
        PrivacyLedger {
            accountant: RdpAccountant::new(),
            delta,
            eps_budget,
        }
    }

    /// Compose one full-batch Gaussian release at noise multiplier `z`
    /// (noise scale over sensitivity), attributing unit sensitivity.
    pub fn add_gaussian_step(&mut self, noise_multiplier: f64) -> LedgerEntry {
        self.accountant.add_gaussian_step(noise_multiplier);
        self.entry(1.0)
    }

    /// Compose one Gaussian release of noise scale `sigma` on a query of
    /// local sensitivity `local_sensitivity` — the §6.4 per-step auditing
    /// primitive (effective noise multiplier zᵢ = σᵢ / sᵢ).
    ///
    /// # Panics
    /// Panics on a non-positive `sigma` or `local_sensitivity`.
    pub fn add_gaussian_release(&mut self, sigma: f64, local_sensitivity: f64) -> LedgerEntry {
        assert!(sigma > 0.0, "PrivacyLedger: sigma must be positive");
        assert!(
            local_sensitivity > 0.0,
            "PrivacyLedger: local sensitivity must be positive"
        );
        self.accountant.add_gaussian_step(sigma / local_sensitivity);
        self.entry(local_sensitivity)
    }

    /// Compose one Poisson-subsampled Gaussian release at sampling rate
    /// `q`, attributing unit sensitivity.
    pub fn add_subsampled_gaussian_step(&mut self, q: f64, noise_multiplier: f64) -> LedgerEntry {
        self.accountant
            .add_subsampled_gaussian_step(q, noise_multiplier);
        self.entry(1.0)
    }

    /// Compose one Laplace release at noise scale `b` (relative to unit ℓ1
    /// sensitivity), attributing unit sensitivity.
    pub fn add_laplace_step(&mut self, scale_over_sensitivity: f64) -> LedgerEntry {
        self.accountant.add_laplace_step(scale_over_sensitivity);
        self.entry(1.0)
    }

    /// ε′ of the composition so far as `(ε′, best_order)`.
    pub fn eps_prime(&self) -> (f64, f64) {
        self.accountant.epsilon(self.delta)
    }

    /// Number of composed releases.
    pub fn steps(&self) -> usize {
        self.accountant.steps()
    }

    /// The δ the ledger converts at.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The analytic ε budget under audit, if one was given.
    pub fn eps_budget(&self) -> Option<f64> {
        self.eps_budget
    }

    /// The wrapped accountant (read-only; compose through the ledger so
    /// every release is narrated).
    pub fn accountant(&self) -> &RdpAccountant {
        &self.accountant
    }

    /// Snapshot the post-release state and emit it to the installed sink.
    fn entry(&self, local_sensitivity: f64) -> LedgerEntry {
        let (eps_prime, order) = self.eps_prime();
        let entry = LedgerEntry {
            step: self.accountant.steps(),
            local_sensitivity,
            eps_prime,
            order,
        };
        obs::record(&obs::Event::Ledger {
            step: entry.step as u64,
            local_sensitivity,
            eps_prime,
            eps_budget: self.eps_budget,
        });
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_matches_a_bare_accountant() {
        let sigmas = [9.9, 10.2, 9.7];
        let ls = [0.8, 1.1, 0.9];
        let delta = 1e-3;
        let mut ledger = PrivacyLedger::new(delta);
        let mut acc = RdpAccountant::new();
        for (&sigma, &s) in sigmas.iter().zip(&ls) {
            ledger.add_gaussian_release(sigma, s);
            acc.add_gaussian_step(sigma / s);
        }
        let (eps_ledger, order_ledger) = ledger.eps_prime();
        let (eps_acc, order_acc) = acc.epsilon(delta);
        assert_eq!(eps_ledger.to_bits(), eps_acc.to_bits());
        assert_eq!(order_ledger, order_acc);
        assert_eq!(ledger.steps(), 3);
    }

    #[test]
    fn entries_report_a_monotone_eps_prime() {
        let mut ledger = PrivacyLedger::with_budget(1e-5, 2.0);
        let mut last = 0.0;
        for step in 1..=10 {
            let entry = ledger.add_gaussian_step(5.0);
            assert_eq!(entry.step, step);
            assert_eq!(entry.local_sensitivity, 1.0);
            assert!(
                entry.eps_prime > last,
                "composition must grow: {} vs {last}",
                entry.eps_prime
            );
            last = entry.eps_prime;
        }
        assert_eq!(ledger.eps_budget(), Some(2.0));
    }

    #[test]
    fn heterogeneous_releases_compose_like_the_accountant_docs() {
        // The accountant doc example: 30 steps at z ≈ 9.95 ⇒ ε ≈ 2.2.
        let mut ledger = PrivacyLedger::new(1e-3);
        let mut entry = ledger.add_gaussian_step(9.95);
        for _ in 1..30 {
            entry = ledger.add_gaussian_release(9.95, 1.0);
        }
        assert!((entry.eps_prime - 2.2).abs() < 0.05, "{}", entry.eps_prime);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn rejects_bad_delta() {
        let _ = PrivacyLedger::new(0.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn rejects_bad_sigma() {
        PrivacyLedger::new(1e-5).add_gaussian_release(0.0, 1.0);
    }
}

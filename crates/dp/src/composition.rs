//! Optimal (ε, δ) composition (Kairouz, Oh & Viswanath, ICML 2015) — the
//! tight-composition result the paper's introduction cites alongside RDP.
//!
//! For k-fold homogeneous composition of (ε, δ)-DP mechanisms, the exact
//! frontier of achievable guarantees is: for every `i ∈ {0, …, ⌊k/2⌋}` the
//! composition is `(ε_i, 1 − (1−δ)^k·(1−δ̃_i))`-DP with
//!
//! ```text
//! ε_i = (k − 2i)·ε
//! δ̃_i = Σ_{ℓ=0}^{i−1} C(k,ℓ)·(e^{(k−ℓ)ε} − e^{(k−2i+ℓ)ε}) / (1 + e^ε)^k
//! ```
//!
//! This module evaluates the frontier in log space and answers the practical
//! question: *given a total δ budget, what is the smallest composed ε?* —
//! a useful cross-check on the RDP accountant for pure-ε building blocks
//! (e.g. per-step Laplace releases in the database-query setting).

use dpaudit_math::{log_binomial, log_sum_exp};

/// One point of the KOV composition frontier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositionPoint {
    /// The slack index i (0 ⇒ naive sequential ε).
    pub i: usize,
    /// Composed ε = (k − 2i)·ε.
    pub epsilon: f64,
    /// Composed δ = 1 − (1−δ)^k·(1−δ̃_i).
    pub delta: f64,
}

/// The additive slack δ̃_i of the KOV theorem, computed stably in log space.
fn kov_delta_tilde(epsilon: f64, k: usize, i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    // log denominator: k·ln(1 + e^ε).
    let log_denom = k as f64 * softplus(epsilon);
    // log numerator: logsumexp over ℓ of ln C(k,ℓ) + ln(e^{(k−ℓ)ε} − e^{(k−2i+ℓ)ε}).
    let mut terms = Vec::with_capacity(i);
    for l in 0..i {
        let hi = (k - l) as f64 * epsilon;
        let lo = (k as isize - 2 * i as isize + l as isize) as f64 * epsilon;
        // ln(e^hi − e^lo) = hi + ln(1 − e^{lo−hi}); lo < hi always here.
        let log_diff = hi + (-((lo - hi).exp())).ln_1p();
        terms.push(log_binomial(k as u64, l as u64) + log_diff);
    }
    (log_sum_exp(&terms) - log_denom).exp()
}

/// Stable `ln(1 + e^x)`.
fn softplus(x: f64) -> f64 {
    dpaudit_math::log1p_exp(x)
}

/// The full KOV frontier for k-fold composition of an (ε, δ)-DP mechanism:
/// one [`CompositionPoint`] per slack index, ε descending.
///
/// # Panics
/// Panics for non-positive ε, δ outside `[0, 1)`, or `k = 0`.
pub fn kov_frontier(epsilon: f64, delta: f64, k: usize) -> Vec<CompositionPoint> {
    assert!(epsilon > 0.0, "kov_frontier: epsilon must be positive");
    assert!(
        (0.0..1.0).contains(&delta),
        "kov_frontier: delta must be in [0, 1)"
    );
    assert!(k > 0, "kov_frontier: k must be positive");
    let base = (1.0 - delta).powi(k as i32);
    (0..=k / 2)
        .map(|i| {
            let delta_tilde = kov_delta_tilde(epsilon, k, i).min(1.0);
            CompositionPoint {
                i,
                epsilon: (k - 2 * i) as f64 * epsilon,
                delta: 1.0 - base * (1.0 - delta_tilde),
            }
        })
        .collect()
}

/// The smallest composed ε certified by KOV at a total δ budget —
/// the optimal-composition answer to "what does k-fold use of this
/// mechanism cost me?".
///
/// # Panics
/// Panics on invalid inputs, or when even the i = 0 point (naive kδ-style
/// total) exceeds the budget.
pub fn kov_optimal_epsilon(epsilon: f64, delta: f64, k: usize, delta_budget: f64) -> f64 {
    assert!(
        delta_budget > 0.0 && delta_budget < 1.0,
        "kov_optimal_epsilon: delta budget must be in (0, 1)"
    );
    let frontier = kov_frontier(epsilon, delta, k);
    let best = frontier
        .iter()
        .filter(|p| p.delta <= delta_budget)
        .map(|p| p.epsilon)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best.is_finite(),
        "kov_optimal_epsilon: delta budget {delta_budget} below the floor 1-(1-delta)^k"
    );
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_zero_is_naive_composition() {
        let f = kov_frontier(0.5, 1e-6, 10);
        assert_eq!(f[0].i, 0);
        assert!((f[0].epsilon - 5.0).abs() < 1e-12);
        // δ at i = 0 is exactly 1 − (1−δ)^k ≈ kδ.
        assert!((f[0].delta - (1.0 - (1.0 - 1e-6_f64).powi(10))).abs() < 1e-15);
    }

    #[test]
    fn frontier_trades_epsilon_for_delta() {
        let f = kov_frontier(0.3, 0.0, 20);
        for w in f.windows(2) {
            assert!(
                w[1].epsilon < w[0].epsilon,
                "epsilon must decrease along the frontier"
            );
            assert!(
                w[1].delta >= w[0].delta,
                "delta must not decrease along the frontier"
            );
        }
        // All deltas valid probabilities.
        assert!(f.iter().all(|p| (0.0..=1.0).contains(&p.delta)));
    }

    #[test]
    fn optimal_beats_naive_for_many_small_steps() {
        // 100 steps of 0.05-DP: naive gives ε = 5; KOV with a 1e-6 slack
        // must certify strictly less.
        let eps = kov_optimal_epsilon(0.05, 0.0, 100, 1e-6);
        assert!(eps < 5.0, "optimal {eps} not below naive 5.0");
        // And it can never beat the advanced-composition scale √(2k ln(1/δ))ε.
        let advanced =
            (2.0 * 100.0 * (1e6_f64).ln()).sqrt() * 0.05 + 100.0 * 0.05 * (0.05_f64.exp() - 1.0);
        assert!(
            eps <= advanced + 1e-9,
            "optimal {eps} worse than advanced {advanced}"
        );
    }

    #[test]
    fn single_step_frontier_is_trivial() {
        let f = kov_frontier(1.0, 1e-5, 1);
        assert_eq!(f.len(), 1);
        assert!((f[0].epsilon - 1.0).abs() < 1e-12);
        assert!((f[0].delta - 1e-5).abs() < 1e-12);
    }

    #[test]
    fn loose_budget_recovers_small_epsilon() {
        // With a generous δ budget the certified ε collapses toward the
        // center of the frontier (k even → can reach 0).
        let tight = kov_optimal_epsilon(0.2, 0.0, 10, 1e-9);
        let loose = kov_optimal_epsilon(0.2, 0.0, 10, 0.5);
        assert!(loose < tight);
    }

    #[test]
    fn delta_tilde_increases_with_i() {
        let a = kov_delta_tilde(0.4, 12, 1);
        let b = kov_delta_tilde(0.4, 12, 3);
        let c = kov_delta_tilde(0.4, 12, 6);
        assert!(0.0 < a && a < b && b < c && c <= 1.0, "{a} {b} {c}");
    }

    #[test]
    #[should_panic(expected = "delta budget")]
    fn impossible_budget_rejected() {
        // Base failure probability 1 − (1−0.01)^50 ≈ 0.39 exceeds 1e-9.
        kov_optimal_epsilon(0.1, 0.01, 50, 1e-9);
    }
}

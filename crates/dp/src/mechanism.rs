//! The Gaussian and Laplace mechanisms.

use dpaudit_math::{squared_l2_distance, GaussianSampler, LaplaceSampler};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::types::DpGuarantee;

/// The Gaussian mechanism `M(D) = f(D) + N(0, σ²·I)` — the mechanism of
/// DPSGD and the subject of the paper's Theorem 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianMechanism {
    /// Noise standard deviation per coordinate.
    pub sigma: f64,
}

impl GaussianMechanism {
    /// Construct with a positive σ.
    ///
    /// # Panics
    /// Panics when σ is not positive and finite.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "GaussianMechanism: sigma must be positive, got {sigma}"
        );
        Self { sigma }
    }

    /// Classic calibration (paper Eq. 1): the σ sufficient for (ε, δ)-DP at
    /// sensitivity `Δf`: `σ = Δf·√(2·ln(1.25/δ)) / ε`.
    ///
    /// # Panics
    /// Panics for δ = 0 (the Gaussian mechanism cannot give pure ε-DP) or a
    /// non-positive sensitivity.
    pub fn calibrate(guarantee: DpGuarantee, sensitivity: f64) -> Self {
        assert!(guarantee.delta > 0.0, "Gaussian mechanism needs delta > 0");
        assert!(
            sensitivity > 0.0,
            "GaussianMechanism::calibrate: sensitivity must be positive"
        );
        let sigma = sensitivity * (2.0 * (1.25 / guarantee.delta).ln()).sqrt() / guarantee.epsilon;
        Self::new(sigma)
    }

    /// Inverse of [`GaussianMechanism::calibrate`] (paper Eq. 2): the ε this
    /// σ certifies at sensitivity `Δf` and failure probability δ.
    pub fn epsilon_for(&self, sensitivity: f64, delta: f64) -> f64 {
        assert!(delta > 0.0, "epsilon_for: delta must be positive");
        assert!(
            sensitivity > 0.0,
            "epsilon_for: sensitivity must be positive"
        );
        sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / self.sigma
    }

    /// Perturb a query result in place.
    pub fn perturb_in_place<R: Rng + ?Sized>(&self, rng: &mut R, value: &mut [f64]) {
        let mut gs = GaussianSampler::new();
        for v in value {
            *v += gs.sample(rng, 0.0, self.sigma);
        }
    }

    /// Perturb a query result, returning a fresh vector.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: &[f64]) -> Vec<f64> {
        let mut out = value.to_vec();
        self.perturb_in_place(rng, &mut out);
        out
    }

    /// Log-density of observing `output` when the true query value is
    /// `center` (multivariate isotropic normal).
    pub fn log_density(&self, output: &[f64], center: &[f64]) -> f64 {
        let d = output.len() as f64;
        let sq = squared_l2_distance(output, center);
        -sq / (2.0 * self.sigma * self.sigma)
            - 0.5 * d * (2.0 * std::f64::consts::PI * self.sigma * self.sigma).ln()
    }

    /// Log-likelihood ratio `ln p(output | center1) − ln p(output | center0)`
    /// — the belief-update increment of the DI adversary (paper Lemma 1),
    /// computed without the normalisation constants.
    pub fn log_likelihood_ratio(&self, output: &[f64], center1: &[f64], center0: &[f64]) -> f64 {
        (squared_l2_distance(output, center0) - squared_l2_distance(output, center1))
            / (2.0 * self.sigma * self.sigma)
    }
}

/// The Laplace mechanism `M(D) = f(D) + Lap(0, b)^d`, used for the paper's
/// pure-ε illustrations (Figure 1) and the Lee–Clifton baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaplaceMechanism {
    /// Noise scale per coordinate.
    pub scale: f64,
}

impl LaplaceMechanism {
    /// Construct with a positive scale.
    ///
    /// # Panics
    /// Panics when the scale is not positive and finite.
    pub fn new(scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "LaplaceMechanism: scale must be positive, got {scale}"
        );
        Self { scale }
    }

    /// Calibrate to pure ε-DP at ℓ1 sensitivity `Δf`: `b = Δf/ε`.
    pub fn calibrate(epsilon: f64, sensitivity_l1: f64) -> Self {
        assert!(
            epsilon > 0.0,
            "LaplaceMechanism::calibrate: epsilon must be positive"
        );
        assert!(
            sensitivity_l1 > 0.0,
            "LaplaceMechanism::calibrate: sensitivity must be positive"
        );
        Self::new(sensitivity_l1 / epsilon)
    }

    /// Perturb a query result, returning a fresh vector.
    pub fn perturb<R: Rng + ?Sized>(&self, rng: &mut R, value: &[f64]) -> Vec<f64> {
        let ls = LaplaceSampler;
        value
            .iter()
            .map(|&v| ls.sample(rng, v, self.scale))
            .collect()
    }

    /// Log-density of `output` when the true value is `center` (product of
    /// independent Laplace densities).
    pub fn log_density(&self, output: &[f64], center: &[f64]) -> f64 {
        assert_eq!(output.len(), center.len(), "log_density: length mismatch");
        let l1: f64 = output.iter().zip(center).map(|(o, c)| (o - c).abs()).sum();
        -l1 / self.scale - output.len() as f64 * (2.0 * self.scale).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;

    #[test]
    fn gaussian_calibration_matches_formula() {
        // ε = 2.2, δ = 1e-3, Δf = 3: σ = 3·√(2 ln 1250)/2.2.
        let m = GaussianMechanism::calibrate(DpGuarantee::new(2.2, 1e-3), 3.0);
        let expect = 3.0 * (2.0 * (1250.0_f64).ln()).sqrt() / 2.2;
        assert!((m.sigma - expect).abs() < 1e-12);
    }

    #[test]
    fn gaussian_calibration_round_trip() {
        let g = DpGuarantee::new(1.1, 1e-5);
        let m = GaussianMechanism::calibrate(g, 2.0);
        let eps = m.epsilon_for(2.0, 1e-5);
        assert!((eps - 1.1).abs() < 1e-12);
    }

    #[test]
    fn stronger_privacy_needs_more_noise() {
        let weak = GaussianMechanism::calibrate(DpGuarantee::new(6.0, 1e-6), 1.0);
        let strong = GaussianMechanism::calibrate(DpGuarantee::new(3.0, 1e-6), 1.0);
        assert!(strong.sigma > weak.sigma);
        assert!((strong.sigma / weak.sigma - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_perturbation_statistics() {
        let m = GaussianMechanism::new(2.0);
        let mut rng = seeded_rng(1);
        let n = 50_000;
        let center = vec![5.0];
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let out = m.perturb(&mut rng, &center);
            sum += out[0];
            sumsq += (out[0] - 5.0) * (out[0] - 5.0);
        }
        assert!((sum / n as f64 - 5.0).abs() < 0.05);
        assert!((sumsq / n as f64 - 4.0).abs() < 0.1);
    }

    #[test]
    fn gaussian_log_density_is_normalized_shape() {
        let m = GaussianMechanism::new(1.0);
        // At the center the log-density of a d-dim standard normal is
        // −d/2·ln(2π).
        let ld = m.log_density(&[0.0, 0.0], &[0.0, 0.0]);
        assert!((ld + (2.0 * std::f64::consts::PI).ln()).abs() < 1e-12);
        // Moving one unit away in one coordinate costs 1/2.
        let ld1 = m.log_density(&[1.0, 0.0], &[0.0, 0.0]);
        assert!((ld - ld1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log_likelihood_ratio_consistent_with_densities() {
        let m = GaussianMechanism::new(1.7);
        let r = vec![0.3, -0.8, 1.2];
        let c1 = vec![0.0, 0.0, 1.0];
        let c0 = vec![0.5, -1.0, 0.5];
        let llr = m.log_likelihood_ratio(&r, &c1, &c0);
        let direct = m.log_density(&r, &c1) - m.log_density(&r, &c0);
        assert!((llr - direct).abs() < 1e-12);
    }

    #[test]
    fn llr_positive_when_closer_to_center1() {
        let m = GaussianMechanism::new(1.0);
        assert!(m.log_likelihood_ratio(&[0.1], &[0.0], &[1.0]) > 0.0);
        assert!(m.log_likelihood_ratio(&[0.9], &[0.0], &[1.0]) < 0.0);
        assert_eq!(m.log_likelihood_ratio(&[0.5], &[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn laplace_calibration_and_density() {
        let m = LaplaceMechanism::calibrate(0.5, 2.0);
        assert!((m.scale - 4.0).abs() < 1e-12);
        // Log-density drop per unit ℓ1 distance is 1/b.
        let d0 = m.log_density(&[0.0], &[0.0]);
        let d1 = m.log_density(&[1.0], &[0.0]);
        assert!((d0 - d1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn laplace_guarantee_ratio_bounded_by_exp_eps() {
        // For any output r and neighbours at distance Δf, the density ratio
        // must be ≤ e^ε. Check on a grid.
        let eps = 0.8;
        let m = LaplaceMechanism::calibrate(eps, 1.0);
        for i in -50..=50 {
            let r = i as f64 * 0.2;
            let ratio = m.log_density(&[r], &[0.0]) - m.log_density(&[r], &[1.0]);
            assert!(ratio.abs() <= eps + 1e-12, "ratio {ratio} at r={r}");
        }
    }

    #[test]
    #[should_panic(expected = "delta > 0")]
    fn gaussian_rejects_pure_dp() {
        GaussianMechanism::calibrate(DpGuarantee::pure(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn gaussian_rejects_bad_sigma() {
        GaussianMechanism::new(-1.0);
    }
}

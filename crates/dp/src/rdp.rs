//! Rényi differential privacy accounting (Mironov, CSF 2017).
//!
//! The paper (§5.2, §6) composes DPSGD's per-step Gaussian releases with RDP
//! rather than naive sequential composition. For the Gaussian mechanism with
//! noise multiplier `z = σ/Δf`, each step is `(α, α/(2z²))`-RDP (paper
//! Eq. 3); k steps compose additively; and an `(α, ε_RDP)`-RDP guarantee
//! converts to `(ε_RDP + ln(1/δ)/(α−1), δ)`-DP. The accountant also supports
//! Poisson-subsampled steps (the mini-batch extension, after Mironov et al.
//! 2019 / the tensorflow-privacy accountant) and *heterogeneous* per-step
//! noise multipliers — the ingredient the ε′-from-sensitivities auditing
//! estimator of §6.4 needs, because the empirical local sensitivity differs
//! at every training step.

use dpaudit_math::{log_binomial, log_sum_exp};
use serde::{Deserialize, Serialize};

/// The default Rényi-order grid, matching the spirit of tensorflow-privacy:
/// a fine sweep of small orders plus exponentially spaced large ones.
pub const DEFAULT_ORDERS: &[f64] = &[
    1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 2.75, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0,
    12.0, 14.0, 16.0, 20.0, 24.0, 28.0, 32.0, 40.0, 48.0, 56.0, 64.0, 96.0, 128.0, 192.0, 256.0,
    384.0, 512.0, 768.0, 1024.0,
];

/// RDP of one full-batch Gaussian release at order `α` and noise multiplier
/// `z = σ/Δf` (paper Eq. 3 with Δf normalised out): `ε_RDP(α) = α/(2z²)`.
///
/// # Panics
/// Panics for `α ≤ 1` or a non-positive `z`.
pub fn gaussian_rdp(alpha: f64, noise_multiplier: f64) -> f64 {
    assert!(
        alpha > 1.0,
        "gaussian_rdp: order must exceed 1, got {alpha}"
    );
    assert!(
        noise_multiplier.is_finite() && noise_multiplier > 0.0,
        "gaussian_rdp: noise multiplier must be positive, got {noise_multiplier}"
    );
    alpha / (2.0 * noise_multiplier * noise_multiplier)
}

/// RDP of one *Poisson-subsampled* Gaussian release at integer order `α ≥ 2`,
/// sampling rate `q ∈ [0, 1]` and noise multiplier `z`.
///
/// Uses the exact binomial expansion (Mironov–Talwar–Zhang; the
/// `_compute_log_a_int` path of tensorflow-privacy), evaluated in log space:
///
/// ```text
/// A(α) = Σ_{i=0}^{α} C(α,i) (1−q)^{α−i} q^i · exp((i²−i)/(2z²))
/// ε_RDP(α) = ln A(α) / (α−1)
/// ```
///
/// # Panics
/// Panics for `α < 2`, `q` outside `[0, 1]` or a non-positive `z`.
pub fn subsampled_gaussian_rdp_int(alpha: u64, q: f64, noise_multiplier: f64) -> f64 {
    assert!(alpha >= 2, "subsampled RDP: integer order must be ≥ 2");
    assert!(
        (0.0..=1.0).contains(&q),
        "subsampled RDP: q must be in [0, 1]"
    );
    assert!(
        noise_multiplier.is_finite() && noise_multiplier > 0.0,
        "subsampled RDP: noise multiplier must be positive"
    );
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        return gaussian_rdp(alpha as f64, noise_multiplier);
    }
    let z2 = noise_multiplier * noise_multiplier;
    let log_q = q.ln();
    let log_1q = (-q).ln_1p();
    let terms: Vec<f64> = (0..=alpha)
        .map(|i| {
            let fi = i as f64;
            log_binomial(alpha, i)
                + fi * log_q
                + (alpha - i) as f64 * log_1q
                + (fi * fi - fi) / (2.0 * z2)
        })
        .collect();
    log_sum_exp(&terms) / (alpha as f64 - 1.0)
}

/// RDP of one Poisson-subsampled Gaussian release at *any* order `α > 1`
/// (fractional included), by numerical integration.
///
/// With `p₀ = N(0, z²)` and the sampled mixture
/// `m = (1−q)·p₀ + q·N(1, z²)`, the Rényi divergence is
///
/// ```text
/// ε_RDP(α) = ln E_{x∼p₀}[ (m(x)/p₀(x))^α ] / (α−1)
///          = ln ∫ φ(u)·((1−q) + q·e^{(2zu−1)/(2z²)})^α du / (α−1)
/// ```
///
/// evaluated stably in log space on a grid wide enough to cover the
/// integrand's shifted mode at `u ≈ α/z`. Agrees with the exact binomial
/// formula at integer orders to ~1e-10 and lets the accountant use its full
/// order grid under subsampling.
///
/// # Panics
/// Panics for `α ≤ 1`, `q` outside `[0, 1]` or a non-positive `z`.
pub fn subsampled_gaussian_rdp_numeric(alpha: f64, q: f64, noise_multiplier: f64) -> f64 {
    assert!(
        alpha > 1.0,
        "subsampled RDP: order must exceed 1, got {alpha}"
    );
    assert!(
        (0.0..=1.0).contains(&q),
        "subsampled RDP: q must be in [0, 1]"
    );
    assert!(
        noise_multiplier.is_finite() && noise_multiplier > 0.0,
        "subsampled RDP: noise multiplier must be positive"
    );
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        return gaussian_rdp(alpha, noise_multiplier);
    }
    let z = noise_multiplier;
    let log_q = q.ln();
    let log_1q = (-q).ln_1p();
    // Integration bounds: the Gaussian factor dies ~12σ out; the likelihood
    // ratio shifts the effective mode to u ≈ α/z.
    let hi = alpha / z + 14.0;
    let lo = -14.0_f64;
    let n = 16_384usize;
    let h = (hi - lo) / n as f64;
    let half_log_2pi = 0.5 * (2.0 * std::f64::consts::PI).ln();
    let mut log_terms = Vec::with_capacity(n + 1);
    for i in 0..=n {
        let u = lo + i as f64 * h;
        // t = ln(p₁/p₀) at x = z·u.
        let t = (2.0 * z * u - 1.0) / (2.0 * z * z);
        // ln((1−q) + q·e^t), stable for any sign/size of t.
        let a = log_1q;
        let b = log_q + t;
        let log_mix = if a > b {
            a + (b - a).exp().ln_1p()
        } else {
            b + (a - b).exp().ln_1p()
        };
        let mut log_f = -0.5 * u * u - half_log_2pi + alpha * log_mix;
        // Trapezoid endpoint halving, in log space.
        if i == 0 || i == n {
            log_f -= std::f64::consts::LN_2;
        }
        log_terms.push(log_f);
    }
    let log_integral = dpaudit_math::log_sum_exp(&log_terms) + h.ln();
    (log_integral / (alpha - 1.0)).max(0.0)
}

/// RDP of the Laplace mechanism at order `α > 1` and noise scale `b = 1/ε`
/// relative to unit sensitivity (Mironov, CSF 2017, Table II):
///
/// ```text
/// ε_RDP(α) = 1/(α−1) · ln( α/(2α−1)·e^{(α−1)/b} + (α−1)/(2α−1)·e^{−α/b} )
/// ```
///
/// Lets the accountant compose pure-ε Laplace releases (the database-query
/// setting) tightly instead of adding ε's.
///
/// # Panics
/// Panics for `α ≤ 1` or a non-positive scale.
pub fn laplace_rdp(alpha: f64, scale_over_sensitivity: f64) -> f64 {
    assert!(alpha > 1.0, "laplace_rdp: order must exceed 1, got {alpha}");
    assert!(
        scale_over_sensitivity.is_finite() && scale_over_sensitivity > 0.0,
        "laplace_rdp: scale must be positive"
    );
    let b = scale_over_sensitivity;
    // Log-space evaluation of the two-term sum.
    let t1 = (alpha / (2.0 * alpha - 1.0)).ln() + (alpha - 1.0) / b;
    let t2 = ((alpha - 1.0) / (2.0 * alpha - 1.0)).ln() - alpha / b;
    dpaudit_math::log_sum_exp(&[t1, t2]) / (alpha - 1.0)
}

/// Closed-form optimal-order (ε, δ) for `k` full-batch Gaussian releases at
/// noise multiplier `z`.
///
/// Minimising `ε(α) = kα/(2z²) + ln(1/δ)/(α−1)` over α gives
/// `α* = 1 + z·√(2·ln(1/δ)/k)` and
///
/// ```text
/// ε* = k/(2z²) + √(2k·ln(1/δ))/z.
/// ```
///
/// # Panics
/// Panics for invalid `z`, `k = 0` or δ outside `(0, 1)`.
pub fn gaussian_rdp_epsilon_closed_form(noise_multiplier: f64, k: usize, delta: f64) -> f64 {
    assert!(k > 0, "closed form: k must be positive");
    assert!(
        noise_multiplier.is_finite() && noise_multiplier > 0.0,
        "closed form: noise multiplier must be positive"
    );
    assert!(
        (0.0..1.0).contains(&delta) && delta > 0.0,
        "closed form: delta in (0,1)"
    );
    let z = noise_multiplier;
    let kf = k as f64;
    let l = (1.0 / delta).ln();
    kf / (2.0 * z * z) + (2.0 * kf * l).sqrt() / z
}

/// An RDP accountant: tracks accumulated RDP at a grid of orders and
/// converts to (ε, δ)-DP by minimising over the grid.
///
/// ```
/// use dpaudit_dp::RdpAccountant;
/// let mut acc = RdpAccountant::new();
/// acc.add_gaussian_steps(9.95, 30);              // 30 DPSGD steps at z ≈ 9.95
/// let (eps, _order) = acc.epsilon(1e-3);
/// assert!((eps - 2.2).abs() < 0.05);             // the paper's rho_beta = 0.9 budget
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RdpAccountant {
    orders: Vec<f64>,
    rdp: Vec<f64>,
    steps: usize,
}

impl Default for RdpAccountant {
    fn default() -> Self {
        Self::new()
    }
}

impl RdpAccountant {
    /// Accountant over [`DEFAULT_ORDERS`].
    pub fn new() -> Self {
        Self::with_orders(DEFAULT_ORDERS)
    }

    /// Accountant over a custom order grid (all orders must exceed 1).
    ///
    /// # Panics
    /// Panics on an empty grid or an order ≤ 1.
    pub fn with_orders(orders: &[f64]) -> Self {
        assert!(!orders.is_empty(), "RdpAccountant: empty order grid");
        assert!(
            orders.iter().all(|&a| a > 1.0),
            "RdpAccountant: all orders must exceed 1"
        );
        Self {
            orders: orders.to_vec(),
            rdp: vec![0.0; orders.len()],
            steps: 0,
        }
    }

    /// The order grid.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// Accumulated RDP per order.
    pub fn rdp(&self) -> &[f64] {
        &self.rdp
    }

    /// Number of composed steps so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Compose one Laplace release at noise scale `b` (relative to unit ℓ1
    /// sensitivity) — tighter than adding the pure ε = 1/b per step.
    pub fn add_laplace_step(&mut self, scale_over_sensitivity: f64) {
        for (r, &a) in self.rdp.iter_mut().zip(&self.orders) {
            *r += laplace_rdp(a, scale_over_sensitivity);
        }
        self.steps += 1;
    }

    /// Compose one full-batch Gaussian release at noise multiplier `z`.
    pub fn add_gaussian_step(&mut self, noise_multiplier: f64) {
        for (r, &a) in self.rdp.iter_mut().zip(&self.orders) {
            *r += gaussian_rdp(a, noise_multiplier);
        }
        self.steps += 1;
    }

    /// Compose `k` identical full-batch Gaussian releases.
    pub fn add_gaussian_steps(&mut self, noise_multiplier: f64, k: usize) {
        for (r, &a) in self.rdp.iter_mut().zip(&self.orders) {
            *r += k as f64 * gaussian_rdp(a, noise_multiplier);
        }
        self.steps += k;
    }

    /// Compose one Poisson-subsampled Gaussian release at sampling rate `q`.
    ///
    /// Integer orders use the exact binomial expansion; fractional orders
    /// use the numerically integrated divergence
    /// ([`subsampled_gaussian_rdp_numeric`]), so the whole grid stays live.
    pub fn add_subsampled_gaussian_step(&mut self, q: f64, noise_multiplier: f64) {
        if q >= 1.0 {
            self.add_gaussian_step(noise_multiplier);
            return;
        }
        for (r, &a) in self.rdp.iter_mut().zip(&self.orders) {
            if a.fract() == 0.0 && a >= 2.0 {
                *r += subsampled_gaussian_rdp_int(a as u64, q, noise_multiplier);
            } else {
                *r += subsampled_gaussian_rdp_numeric(a, q, noise_multiplier);
            }
        }
        self.steps += 1;
    }

    /// Convert the accumulated RDP to an (ε, δ) guarantee, returning
    /// `(ε, best_order)`.
    ///
    /// # Panics
    /// Panics for δ outside `(0, 1)`.
    pub fn epsilon(&self, delta: f64) -> (f64, f64) {
        assert!(
            delta > 0.0 && delta < 1.0,
            "epsilon: delta must be in (0,1)"
        );
        let log_inv_delta = (1.0 / delta).ln();
        let mut best = (f64::INFINITY, self.orders[0]);
        for (&a, &r) in self.orders.iter().zip(&self.rdp) {
            if !r.is_finite() {
                continue;
            }
            let eps = r + log_inv_delta / (a - 1.0);
            if eps < best.0 {
                best = (eps, a);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_rdp_formula() {
        assert!((gaussian_rdp(2.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((gaussian_rdp(10.0, 2.0) - 10.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn rdp_composition_is_additive() {
        let mut a = RdpAccountant::new();
        a.add_gaussian_step(2.0);
        a.add_gaussian_step(2.0);
        let mut b = RdpAccountant::new();
        b.add_gaussian_steps(2.0, 2);
        assert_eq!(a.rdp(), b.rdp());
        assert_eq!(a.steps(), 2);
        let (ea, _) = a.epsilon(1e-5);
        let (eb, _) = b.epsilon(1e-5);
        assert!((ea - eb).abs() < 1e-12);
    }

    #[test]
    fn grid_conversion_close_to_closed_form() {
        // A dense grid around the optimal order should approach the closed
        // form; the default grid should be within a few percent.
        for &(z, k, delta) in &[(1.0, 1usize, 1e-5), (5.0, 30, 1e-3), (10.0, 30, 1e-2)] {
            let closed = gaussian_rdp_epsilon_closed_form(z, k, delta);
            let mut acc = RdpAccountant::new();
            acc.add_gaussian_steps(z, k);
            let (grid, _) = acc.epsilon(delta);
            assert!(grid >= closed - 1e-9, "grid {grid} < closed {closed}");
            assert!(
                grid <= closed * 1.05,
                "grid {grid} too far above closed {closed} (z={z}, k={k})"
            );
        }
    }

    #[test]
    fn dense_grid_converges_to_closed_form() {
        let (z, k, delta) = (3.0, 30usize, 1e-3);
        let opt_alpha = 1.0 + z * (2.0 * (1.0f64 / delta).ln() / k as f64).sqrt();
        let orders: Vec<f64> = (1..4000)
            .map(|i| 1.0 + i as f64 * opt_alpha / 1000.0)
            .collect();
        let mut acc = RdpAccountant::with_orders(&orders);
        acc.add_gaussian_steps(z, k);
        let (grid, best) = acc.epsilon(delta);
        let closed = gaussian_rdp_epsilon_closed_form(z, k, delta);
        assert!((grid - closed).abs() / closed < 1e-3, "{grid} vs {closed}");
        assert!((best - opt_alpha).abs() / opt_alpha < 0.01);
    }

    #[test]
    fn epsilon_decreases_with_weaker_delta() {
        let mut acc = RdpAccountant::new();
        acc.add_gaussian_steps(4.0, 10);
        let (e_strict, _) = acc.epsilon(1e-8);
        let (e_loose, _) = acc.epsilon(1e-2);
        assert!(e_strict > e_loose);
    }

    #[test]
    fn more_noise_less_epsilon() {
        let eps_at = |z: f64| {
            let mut acc = RdpAccountant::new();
            acc.add_gaussian_steps(z, 30);
            acc.epsilon(1e-3).0
        };
        assert!(eps_at(2.0) > eps_at(4.0));
        assert!(eps_at(4.0) > eps_at(8.0));
    }

    #[test]
    fn heterogeneous_steps_compose() {
        // Mixed noise multipliers: composing {2, 8} must land strictly
        // between composing {2, 2} and {8, 8}.
        let eps_pair = |z1: f64, z2: f64| {
            let mut acc = RdpAccountant::new();
            acc.add_gaussian_step(z1);
            acc.add_gaussian_step(z2);
            acc.epsilon(1e-5).0
        };
        let lo = eps_pair(8.0, 8.0);
        let hi = eps_pair(2.0, 2.0);
        let mid = eps_pair(2.0, 8.0);
        assert!(lo < mid && mid < hi, "{lo} < {mid} < {hi}");
    }

    #[test]
    fn subsampled_matches_full_batch_at_q1() {
        for &alpha in &[2u64, 3, 8, 32] {
            let s = subsampled_gaussian_rdp_int(alpha, 1.0, 1.5);
            let g = gaussian_rdp(alpha as f64, 1.5);
            assert!((s - g).abs() < 1e-10, "alpha={alpha}: {s} vs {g}");
        }
    }

    #[test]
    fn subsampled_zero_rate_is_free() {
        assert_eq!(subsampled_gaussian_rdp_int(4, 0.0, 1.0), 0.0);
    }

    #[test]
    fn subsampling_amplifies_privacy() {
        // RDP at q = 0.01 must be far below full batch, and monotone in q.
        let z = 1.0;
        let full = gaussian_rdp(8.0, z);
        let q01 = subsampled_gaussian_rdp_int(8, 0.01, z);
        let q10 = subsampled_gaussian_rdp_int(8, 0.1, z);
        assert!(q01 < q10, "{q01} < {q10}");
        assert!(q10 < full, "{q10} < {full}");
        assert!(q01 < full / 10.0, "amplification too weak: {q01} vs {full}");
    }

    #[test]
    fn subsampled_accountant_uses_full_grid() {
        let mut acc = RdpAccountant::new();
        acc.add_subsampled_gaussian_step(0.05, 1.0);
        let (eps, _) = acc.epsilon(1e-5);
        assert!(eps.is_finite());
        // Every order accumulated something finite and non-negative.
        assert!(acc.rdp().iter().all(|r| r.is_finite() && *r >= 0.0));
    }

    #[test]
    fn numeric_matches_binomial_at_integer_orders() {
        for &(alpha, q, z) in &[
            (2u64, 0.01, 1.0),
            (3, 0.1, 1.5),
            (8, 0.05, 0.8),
            (16, 0.2, 2.0),
            (32, 0.01, 1.1),
        ] {
            let exact = subsampled_gaussian_rdp_int(alpha, q, z);
            let numeric = subsampled_gaussian_rdp_numeric(alpha as f64, q, z);
            assert!(
                (exact - numeric).abs() <= 1e-8 * (1.0 + exact),
                "alpha={alpha} q={q} z={z}: exact {exact} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn numeric_fractional_orders_interpolate_monotonically() {
        // RDP is non-decreasing in the order; fractional values must sit
        // between their integer neighbours.
        let (q, z) = (0.02, 1.2);
        let r2 = subsampled_gaussian_rdp_numeric(2.0, q, z);
        let r25 = subsampled_gaussian_rdp_numeric(2.5, q, z);
        let r3 = subsampled_gaussian_rdp_numeric(3.0, q, z);
        assert!(r2 <= r25 && r25 <= r3, "{r2} {r25} {r3}");
    }

    #[test]
    fn numeric_edges_match_closed_forms() {
        assert_eq!(subsampled_gaussian_rdp_numeric(4.0, 0.0, 1.0), 0.0);
        let full = subsampled_gaussian_rdp_numeric(4.0, 1.0, 1.5);
        assert!((full - gaussian_rdp(4.0, 1.5)).abs() < 1e-12);
    }

    #[test]
    fn small_q_rdp_scales_like_q_squared() {
        let z = 2.0;
        let r1 = subsampled_gaussian_rdp_int(2, 1e-3, z);
        let r2 = subsampled_gaussian_rdp_int(2, 2e-3, z);
        let ratio = r2 / r1;
        assert!((ratio - 4.0).abs() < 0.1, "expected ~4x, got {ratio}");
    }

    #[test]
    fn laplace_rdp_limits() {
        // α → ∞ recovers the pure-DP ε = 1/b; large α approximates it.
        let b = 2.0;
        let near_inf = laplace_rdp(1e6, b);
        assert!(
            (near_inf - 1.0 / b).abs() < 1e-3,
            "{near_inf} vs {}",
            1.0 / b
        );
        // RDP is non-decreasing in α and bounded by ε = 1/b.
        let r2 = laplace_rdp(2.0, b);
        let r8 = laplace_rdp(8.0, b);
        let r64 = laplace_rdp(64.0, b);
        assert!(r2 <= r8 && r8 <= r64, "{r2} {r8} {r64}");
        assert!(r64 <= 1.0 / b + 1e-12);
        assert!(r2 > 0.0);
    }

    #[test]
    fn laplace_rdp_composition_beats_naive_for_many_steps() {
        // 100 Laplace releases at ε = 0.05 each: naive total 5.0; RDP
        // composition with a δ slack must certify strictly less.
        let b = 1.0 / 0.05;
        let mut acc = RdpAccountant::new();
        for _ in 0..100 {
            acc.add_laplace_step(b);
        }
        let (eps, _) = acc.epsilon(1e-6);
        assert!(eps < 5.0, "RDP-composed Laplace {eps} not below naive 5.0");
        assert!(eps > 0.1);
    }

    #[test]
    fn laplace_rdp_more_noise_less_budget() {
        assert!(laplace_rdp(8.0, 4.0) < laplace_rdp(8.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "order must exceed 1")]
    fn order_one_rejected() {
        gaussian_rdp(1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty order grid")]
    fn empty_grid_rejected() {
        RdpAccountant::with_orders(&[]);
    }
}

//! Sensitivity notions (paper Definitions 2, 3 and §5.1).

use serde::{Deserialize, Serialize};

use crate::types::NeighborMode;

/// Which sensitivity a mechanism's noise is scaled to.
///
/// The paper's central empirical finding (Figures 5–10) is that scaling noise
/// to the *global* sensitivity (the clipping norm) leaves the identifiability
/// bounds loose, while scaling to the *estimated local* sensitivity of the
/// actual neighbouring pair makes them tight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// Global sensitivity (Definition 2): the worst case over all
    /// neighbouring pairs. For the clipped-gradient-sum query this is the
    /// clipping norm `C` (unbounded) or `2C` (bounded).
    Global(f64),
    /// Local sensitivity (Definition 3) estimated for the concrete pair
    /// `(D, D̂′)` selected by dataset sensitivity — Eqs. 17/18.
    Local(f64),
}

impl Sensitivity {
    /// The numeric Δf to scale noise with.
    ///
    /// # Panics
    /// Panics when the value is not positive and finite (a zero local
    /// sensitivity would mean the two hypotheses are indistinguishable and
    /// no noise is needed; callers must handle that case explicitly).
    pub fn value(&self) -> f64 {
        let v = match self {
            Sensitivity::Global(v) | Sensitivity::Local(v) => *v,
        };
        assert!(
            v.is_finite() && v > 0.0,
            "Sensitivity must be positive, got {v}"
        );
        v
    }

    /// Raw value without validation (for reporting).
    pub fn raw(&self) -> f64 {
        match self {
            Sensitivity::Global(v) | Sensitivity::Local(v) => *v,
        }
    }

    /// True for the `Global` variant.
    pub fn is_global(&self) -> bool {
        matches!(self, Sensitivity::Global(_))
    }
}

/// Global ℓ2 sensitivity of the clipped per-example gradient *sum*
/// `f(D) = Σ_{x∈D} clip_C(∇ℓ(x))`:
///
/// * unbounded (add/remove one record): one clipped gradient of norm ≤ C
///   appears or disappears → `GS = C`;
/// * bounded (replace one record): two clipped gradients of norm ≤ C may
///   point in opposite directions → `GS = 2C` (paper §6.1, Algorithm 1
///   adaptation).
///
/// # Panics
/// Panics for a non-positive clipping norm.
pub fn gradient_sum_global_sensitivity(clip_norm: f64, mode: NeighborMode) -> f64 {
    assert!(
        clip_norm.is_finite() && clip_norm > 0.0,
        "clip norm must be positive, got {clip_norm}"
    );
    match mode {
        NeighborMode::Unbounded => clip_norm,
        NeighborMode::Bounded => 2.0 * clip_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_value_accessors() {
        assert_eq!(Sensitivity::Global(3.0).value(), 3.0);
        assert_eq!(Sensitivity::Local(0.5).value(), 0.5);
        assert!(Sensitivity::Global(3.0).is_global());
        assert!(!Sensitivity::Local(3.0).is_global());
        assert_eq!(Sensitivity::Local(0.0).raw(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_sensitivity_value_panics() {
        Sensitivity::Local(0.0).value();
    }

    #[test]
    fn gradient_sum_sensitivities() {
        assert_eq!(
            gradient_sum_global_sensitivity(3.0, NeighborMode::Unbounded),
            3.0
        );
        assert_eq!(
            gradient_sum_global_sensitivity(3.0, NeighborMode::Bounded),
            6.0
        );
    }

    #[test]
    #[should_panic(expected = "clip norm must be positive")]
    fn bad_clip_norm_panics() {
        gradient_sum_global_sensitivity(0.0, NeighborMode::Bounded);
    }
}

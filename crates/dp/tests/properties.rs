//! Property-based tests of the DP primitives: mechanism guarantees,
//! accountant monotonicity/additivity, calibration consistency.

use dpaudit_dp::{
    calibrate_noise_multiplier_closed_form, gaussian_rdp, gaussian_rdp_epsilon_closed_form,
    subsampled_gaussian_rdp_int, subsampled_gaussian_rdp_numeric, DpGuarantee, GaussianMechanism,
    LaplaceMechanism, RdpAccountant,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The Laplace mechanism's pointwise density ratio respects e^ε — the
    /// literal Definition 1 for pure ε-DP, checked at random outputs.
    #[test]
    fn laplace_density_ratio_bounded(
        eps in 0.05..5.0f64,
        sensitivity in 0.1..10.0f64,
        r in -50.0..50.0f64,
    ) {
        let m = LaplaceMechanism::calibrate(eps, sensitivity);
        // Neighbouring query values at exactly the sensitivity apart.
        let ratio = m.log_density(&[r], &[0.0]) - m.log_density(&[r], &[sensitivity]);
        prop_assert!(ratio.abs() <= eps + 1e-9, "log ratio {ratio} vs eps {eps}");
    }

    /// Gaussian classic calibration is exactly inverted by `epsilon_for`.
    #[test]
    fn gaussian_calibration_bijective(
        eps in 0.05..10.0f64,
        log_delta in -9.0..-1.5f64,
        sensitivity in 0.1..10.0f64,
    ) {
        let delta = 10f64.powf(log_delta);
        let m = GaussianMechanism::calibrate(DpGuarantee::new(eps, delta), sensitivity);
        let back = m.epsilon_for(sensitivity, delta);
        prop_assert!((back - eps).abs() < 1e-9 * (1.0 + eps));
    }

    /// RDP of the Gaussian is linear in α and inverse-quadratic in z.
    #[test]
    fn gaussian_rdp_scaling(alpha in 1.01..100.0f64, z in 0.1..50.0f64) {
        let r = gaussian_rdp(alpha, z);
        prop_assert!((gaussian_rdp(2.0 * alpha, z) - 2.0 * r).abs() < 1e-9 * (1.0 + r));
        prop_assert!((gaussian_rdp(alpha, 2.0 * z) - r / 4.0).abs() < 1e-9 * (1.0 + r));
    }

    /// Composing k identical steps is additive in the accountant.
    #[test]
    fn accountant_additivity(z in 0.3..20.0f64, k in 1usize..50) {
        let mut one = RdpAccountant::new();
        one.add_gaussian_steps(z, k);
        let mut incremental = RdpAccountant::new();
        for _ in 0..k {
            incremental.add_gaussian_step(z);
        }
        for (a, b) in one.rdp().iter().zip(incremental.rdp()) {
            prop_assert!((a - b).abs() < 1e-9 * (1.0 + a));
        }
    }

    /// Converted ε is monotone: more steps cost more, more noise costs less.
    #[test]
    fn epsilon_monotonicity(z in 0.5..20.0f64, k in 1usize..50) {
        let eps_at = |zz: f64, kk: usize| {
            let mut acc = RdpAccountant::new();
            acc.add_gaussian_steps(zz, kk);
            acc.epsilon(1e-5).0
        };
        prop_assert!(eps_at(z, k + 1) > eps_at(z, k));
        prop_assert!(eps_at(z * 1.5, k) < eps_at(z, k));
    }

    /// Subsampled RDP (integer orders) is monotone in q and never exceeds
    /// the full-batch value.
    #[test]
    fn subsampling_monotone_in_rate(
        alpha in 2u64..32,
        q in 0.001..0.5f64,
        z in 0.5..5.0f64,
    ) {
        let r_q = subsampled_gaussian_rdp_int(alpha, q, z);
        let r_2q = subsampled_gaussian_rdp_int(alpha, (2.0 * q).min(1.0), z);
        prop_assert!(r_q <= r_2q + 1e-12);
        prop_assert!(r_2q <= gaussian_rdp(alpha as f64, z) + 1e-12);
        prop_assert!(r_q >= 0.0);
    }

    /// The numeric fractional-order evaluation agrees with the exact
    /// binomial formula wherever both are defined.
    #[test]
    fn numeric_subsampled_matches_exact(
        alpha in 2u64..24,
        q in 0.001..0.3f64,
        z in 0.6..4.0f64,
    ) {
        let exact = subsampled_gaussian_rdp_int(alpha, q, z);
        let numeric = subsampled_gaussian_rdp_numeric(alpha as f64, q, z);
        prop_assert!(
            (exact - numeric).abs() <= 1e-6 * (1.0 + exact),
            "alpha={alpha} q={q} z={z}: {exact} vs {numeric}"
        );
    }

    /// Closed-form calibration always meets its own target exactly.
    #[test]
    fn calibration_meets_target(
        eps in 0.02..20.0f64,
        log_delta in -9.0..-1.0f64,
        k in 1usize..300,
    ) {
        let delta = 10f64.powf(log_delta);
        let z = calibrate_noise_multiplier_closed_form(eps, delta, k);
        let achieved = gaussian_rdp_epsilon_closed_form(z, k, delta);
        prop_assert!((achieved - eps).abs() < 1e-8 * (1.0 + eps));
    }

    /// Sequential composition of split guarantees reproduces the total.
    #[test]
    fn sequential_split_compose_identity(
        eps in 0.1..10.0f64,
        log_delta in -8.0..-2.0f64,
        k in 1usize..100,
    ) {
        let delta = 10f64.powf(log_delta);
        let total = DpGuarantee::new(eps, delta);
        let per = total.split_sequential(k);
        let back = DpGuarantee::compose_sequential(&vec![per; k]);
        prop_assert!((back.epsilon - eps).abs() < 1e-9 * (1.0 + eps));
        prop_assert!((back.delta - delta).abs() < 1e-12);
    }

    /// Gaussian perturbation preserves the query dimension and is unbiased
    /// in aggregate (loose statistical check per case).
    #[test]
    fn gaussian_perturbation_shape(dim in 1usize..20, sigma in 0.1..5.0f64, seed in 0u64..500) {
        let m = GaussianMechanism::new(sigma);
        let value: Vec<f64> = (0..dim).map(|i| i as f64).collect();
        let mut rng = dpaudit_math::seeded_rng(seed);
        let out = m.perturb(&mut rng, &value);
        prop_assert_eq!(out.len(), dim);
        prop_assert!(out.iter().zip(&value).any(|(o, v)| o != v));
    }
}

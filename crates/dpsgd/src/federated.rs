//! Federated DPSGD simulation — the deployment setting that makes the DI
//! adversary realistic (paper §6.1/§7).
//!
//! Multiple data owners hold disjoint shards; each round every client
//! computes the clipped per-example gradient *sum* over its shard, the
//! server aggregates the client sums, perturbs the total with Gaussian
//! noise scaled to the clip bound (record-level DP: every record lives in
//! exactly one shard and contributes at most `C` to the total), and
//! broadcasts the update. Every participant therefore observes the same
//! perturbed gradients the paper's adversary consumes — an insider *is*
//! A_DI,Gau.
//!
//! Simulation notes: batch-normalisation statistics (if the architecture
//! has them) are refreshed from the union of shards, a centralised
//! simplification (production FL would keep per-client statistics, e.g.
//! FedBN); architectures without normalisation layers are unaffected.

use dpaudit_datasets::Dataset;
use dpaudit_dp::RdpAccountant;
use dpaudit_math::{axpy, GaussianSampler};
use dpaudit_nn::Sequential;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::clip::ClippingStrategy;

/// Configuration of a federated DPSGD run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedConfig {
    /// Per-example clipping strategy applied inside every client.
    pub clipping: ClippingStrategy,
    /// Learning rate applied to the mean perturbed gradient.
    pub learning_rate: f64,
    /// Number of federated rounds.
    pub rounds: usize,
    /// Noise multiplier `z = σ/C` for the server-side perturbation.
    pub noise_multiplier: f64,
    /// Whether round records retain the per-client clean sums (what a
    /// compromised aggregator would see before secure aggregation).
    /// `false` models secure aggregation: only the noisy total leaves the
    /// server.
    pub retain_client_sums: bool,
}

impl FederatedConfig {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics on invalid norms, rate, rounds or noise multiplier.
    pub fn new(
        clipping: ClippingStrategy,
        learning_rate: f64,
        rounds: usize,
        noise_multiplier: f64,
    ) -> Self {
        clipping.total_bound();
        assert!(
            learning_rate > 0.0,
            "FederatedConfig: learning rate must be positive"
        );
        assert!(rounds > 0, "FederatedConfig: rounds must be positive");
        assert!(
            noise_multiplier.is_finite() && noise_multiplier > 0.0,
            "FederatedConfig: noise multiplier must be positive"
        );
        Self {
            clipping,
            learning_rate,
            rounds,
            noise_multiplier,
            retain_client_sums: false,
        }
    }
}

/// What one federated round produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Zero-based round index.
    pub round: usize,
    /// The noisy aggregated gradient sum broadcast to all clients.
    pub noisy_total: Vec<f64>,
    /// Clean per-client sums (empty unless
    /// [`FederatedConfig::retain_client_sums`]).
    pub client_sums: Vec<Vec<f64>>,
    /// The clean total (sum of client sums) — the mechanism center.
    pub clean_total: Vec<f64>,
    /// Server noise standard deviation this round.
    pub sigma: f64,
    /// Mean training loss across all records this round.
    pub mean_loss: f64,
}

/// Outcome of a federated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FederatedOutcome {
    /// Accountant over the composed rounds (record-level, unbounded DP).
    pub accountant: RdpAccountant,
    /// Total number of records across clients.
    pub total_records: usize,
}

impl FederatedOutcome {
    /// The (ε, δ)-DP guarantee realised by the run.
    pub fn epsilon(&self, delta: f64) -> f64 {
        self.accountant.epsilon(delta).0
    }
}

/// Run federated DPSGD over the given client shards, streaming one
/// [`RoundRecord`] per round.
///
/// # Panics
/// Panics when there are no clients or all shards are empty.
pub fn train_federated<R: Rng + ?Sized>(
    model: &mut Sequential,
    clients: &[Dataset],
    cfg: &FederatedConfig,
    rng: &mut R,
    mut observer: impl FnMut(RoundRecord),
) -> FederatedOutcome {
    assert!(!clients.is_empty(), "train_federated: no clients");
    let total_records: usize = clients.iter().map(Dataset::len).sum();
    assert!(total_records > 0, "train_federated: all shards are empty");
    let dim = model.param_count();
    let layout = model.param_layout();
    let bound = cfg.clipping.total_bound();
    let sigma = cfg.noise_multiplier * bound;
    let mut gauss = GaussianSampler::new();
    let mut accountant = RdpAccountant::new();

    // Union view for the (simulated) normalisation-statistics refresh.
    let union: Vec<_> = clients.iter().flat_map(|c| c.xs.iter().cloned()).collect();

    for round in 0..cfg.rounds {
        model.update_norm_stats(&union);

        let mut client_sums = Vec::with_capacity(clients.len());
        let mut clean_total = vec![0.0; dim];
        let mut loss_total = 0.0;
        for shard in clients {
            let mut sum = vec![0.0; dim];
            for (x, &y) in shard.xs.iter().zip(&shard.ys) {
                let (loss, mut g) = model.per_example_grad(x, y);
                cfg.clipping.clip(&mut g, &layout);
                loss_total += loss;
                axpy(1.0, &g, &mut sum);
            }
            axpy(1.0, &sum, &mut clean_total);
            if cfg.retain_client_sums {
                client_sums.push(sum);
            }
        }

        let mut noisy_total = clean_total.clone();
        for v in &mut noisy_total {
            *v += gauss.sample(rng, 0.0, sigma);
        }

        let update: Vec<f64> = noisy_total
            .iter()
            .map(|v| v / total_records as f64)
            .collect();
        model.gradient_step(&update, cfg.learning_rate);
        accountant.add_gaussian_step(cfg.noise_multiplier);

        observer(RoundRecord {
            round,
            noisy_total,
            client_sums,
            clean_total,
            sigma,
            mean_loss: loss_total / total_records as f64,
        });
    }

    FederatedOutcome {
        accountant,
        total_records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::{l2_distance, seeded_rng};
    use dpaudit_nn::{Dense, Layer};
    use dpaudit_tensor::Tensor;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 4, 5)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 5, 2)),
        ])
    }

    fn records(n: usize, offset: usize) -> Dataset {
        let mut d = Dataset::empty();
        for i in 0..n {
            let x: Vec<f64> = (0..4)
                .map(|j| (((i + offset) * 7 + j * 3) % 9) as f64 / 9.0)
                .collect();
            d.push(Tensor::from_vec(&[4], x), (i + offset) % 2);
        }
        d
    }

    fn cfg(rounds: usize) -> FederatedConfig {
        FederatedConfig::new(ClippingStrategy::Flat(1.0), 0.1, rounds, 2.0)
    }

    #[test]
    fn clean_total_is_partition_invariant() {
        // The same records split 1-way vs 3-way must give identical clean
        // totals (same model state, same clipping, same noise seed).
        let all = records(12, 0);
        let split = vec![records(4, 0), records(4, 4), records(4, 8)];
        let mut m1 = tiny_model(1);
        let mut m2 = tiny_model(1);
        let mut r1 = Vec::new();
        let mut r2 = Vec::new();
        train_federated(&mut m1, &[all], &cfg(3), &mut seeded_rng(2), |r| r1.push(r));
        train_federated(&mut m2, &split, &cfg(3), &mut seeded_rng(2), |r| r2.push(r));
        for (a, b) in r1.iter().zip(&r2) {
            assert!(l2_distance(&a.clean_total, &b.clean_total) < 1e-9);
            assert!(l2_distance(&a.noisy_total, &b.noisy_total) < 1e-9);
        }
        assert_eq!(m1.params(), m2.params());
    }

    #[test]
    fn secure_aggregation_hides_client_sums() {
        let shards = vec![records(3, 0), records(3, 3)];
        let mut model = tiny_model(3);
        let mut rec = Vec::new();
        train_federated(&mut model, &shards, &cfg(2), &mut seeded_rng(4), |r| {
            rec.push(r)
        });
        assert!(rec.iter().all(|r| r.client_sums.is_empty()));
        let mut open = cfg(2);
        open.retain_client_sums = true;
        let mut model2 = tiny_model(3);
        let mut rec2 = Vec::new();
        train_federated(&mut model2, &shards, &open, &mut seeded_rng(4), |r| {
            rec2.push(r)
        });
        assert!(rec2.iter().all(|r| r.client_sums.len() == 2));
        // Client sums add up to the clean total.
        for r in &rec2 {
            let mut sum = vec![0.0; r.clean_total.len()];
            for cs in &r.client_sums {
                axpy(1.0, cs, &mut sum);
            }
            assert!(l2_distance(&sum, &r.clean_total) < 1e-9);
        }
    }

    #[test]
    fn accountant_composes_per_round() {
        let shards = vec![records(5, 0)];
        let mut model = tiny_model(5);
        let out = train_federated(&mut model, &shards, &cfg(4), &mut seeded_rng(6), |_| {});
        assert_eq!(out.accountant.steps(), 4);
        assert_eq!(out.total_records, 5);
        let mut reference = RdpAccountant::new();
        reference.add_gaussian_steps(2.0, 4);
        assert!((out.epsilon(1e-5) - reference.epsilon(1e-5).0).abs() < 1e-12);
    }

    #[test]
    fn per_record_influence_bounded_by_clip() {
        // Adding one record changes the clean total by at most C.
        let base = records(6, 0);
        let mut plus = base.clone();
        plus.push(Tensor::full(&[4], 0.9), 1);
        let c = cfg(1);
        let run = |shard: Dataset| {
            let mut model = tiny_model(7);
            let mut out = Vec::new();
            train_federated(&mut model, &[shard], &c, &mut seeded_rng(8), |r| {
                out.push(r)
            });
            out.remove(0).clean_total
        };
        let diff = l2_distance(&run(base), &run(plus));
        assert!(diff <= 1.0 + 1e-9, "influence {diff} exceeds C = 1");
        assert!(diff > 0.0);
    }

    #[test]
    fn training_signal_flows() {
        let shards = vec![records(8, 0), records(8, 8)];
        let mut model = tiny_model(9);
        let mut losses = Vec::new();
        // Tiny noise so the learning signal dominates.
        let c = FederatedConfig::new(ClippingStrategy::Flat(5.0), 0.4, 60, 1e-3);
        train_federated(&mut model, &shards, &c, &mut seeded_rng(10), |r| {
            losses.push(r.mean_loss);
        });
        assert!(
            losses[losses.len() - 1] < losses[0],
            "loss {} -> {}",
            losses[0],
            losses[losses.len() - 1]
        );
    }

    #[test]
    #[should_panic(expected = "no clients")]
    fn empty_client_list_rejected() {
        train_federated(
            &mut tiny_model(11),
            &[],
            &cfg(1),
            &mut seeded_rng(12),
            |_| {},
        );
    }
}

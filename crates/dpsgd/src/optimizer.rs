//! Optimizers applied to the *released* (noisy) gradient.
//!
//! The paper notes DPSGD wraps "a differentially private version of an ML
//! optimizer such as Adam or SGD" (§2.1). Everything after the Gaussian
//! release is post-processing, so swapping SGD for Adam costs no privacy:
//! the mechanism output — and hence the DI adversary's view and every
//! identifiability score — is unchanged; only the weight trajectory
//! (utility) differs.

use dpaudit_nn::Sequential;
use serde::{Deserialize, Serialize};

/// Which update rule consumes the mean perturbed gradient.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum Optimizer {
    /// Plain gradient descent `θ ← θ − η·g̃` (the paper's setup).
    #[default]
    Sgd,
    /// Adam on the noisy gradients (bias-corrected first/second moments).
    Adam {
        /// First-moment decay (canonically 0.9).
        beta1: f64,
        /// Second-moment decay (canonically 0.999).
        beta2: f64,
        /// Denominator stabiliser (canonically 1e-8).
        eps: f64,
    },
}

impl Optimizer {
    /// Canonical Adam hyperparameters.
    pub fn adam() -> Self {
        Optimizer::Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }
}

/// Per-run optimizer state (moment buffers for Adam; empty for SGD).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptimizerState {
    kind: Optimizer,
    m: Vec<f64>,
    v: Vec<f64>,
    t: usize,
}

impl OptimizerState {
    /// Fresh state for a model with `dim` parameters.
    ///
    /// # Panics
    /// Panics on invalid Adam hyperparameters.
    pub fn new(kind: Optimizer, dim: usize) -> Self {
        if let Optimizer::Adam { beta1, beta2, eps } = kind {
            assert!((0.0..1.0).contains(&beta1), "Adam: beta1 must be in [0, 1)");
            assert!((0.0..1.0).contains(&beta2), "Adam: beta2 must be in [0, 1)");
            assert!(eps > 0.0, "Adam: eps must be positive");
        }
        let buf = match kind {
            Optimizer::Sgd => 0,
            Optimizer::Adam { .. } => dim,
        };
        Self {
            kind,
            m: vec![0.0; buf],
            v: vec![0.0; buf],
            t: 0,
        }
    }

    /// Apply one update with the mean (per-record) perturbed gradient.
    ///
    /// # Panics
    /// Panics if the gradient dimension does not match the model.
    pub fn apply(&mut self, model: &mut Sequential, grad_mean: &[f64], learning_rate: f64) {
        assert_eq!(
            grad_mean.len(),
            model.param_count(),
            "OptimizerState::apply: gradient dimension mismatch"
        );
        match self.kind {
            Optimizer::Sgd => model.gradient_step(grad_mean, learning_rate),
            Optimizer::Adam { beta1, beta2, eps } => {
                self.t += 1;
                let bc1 = 1.0 - beta1.powi(self.t as i32);
                let bc2 = 1.0 - beta2.powi(self.t as i32);
                let mut direction = vec![0.0; grad_mean.len()];
                for i in 0..grad_mean.len() {
                    self.m[i] = beta1 * self.m[i] + (1.0 - beta1) * grad_mean[i];
                    self.v[i] = beta2 * self.v[i] + (1.0 - beta2) * grad_mean[i] * grad_mean[i];
                    let m_hat = self.m[i] / bc1;
                    let v_hat = self.v[i] / bc2;
                    direction[i] = m_hat / (v_hat.sqrt() + eps);
                }
                model.gradient_step(&direction, learning_rate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;
    use dpaudit_nn::{Dense, Layer};

    fn model() -> Sequential {
        Sequential::new(vec![Layer::Dense(Dense::new(&mut seeded_rng(1), 3, 2))])
    }

    #[test]
    fn sgd_matches_gradient_step() {
        let mut a = model();
        let mut b = model();
        let g = vec![0.1; a.param_count()];
        OptimizerState::new(Optimizer::Sgd, a.param_count()).apply(&mut a, &g, 0.5);
        b.gradient_step(&g, 0.5);
        assert_eq!(a.params(), b.params());
    }

    #[test]
    fn adam_first_step_is_signed_unit_step() {
        // With zero-initialised moments, step 1 of Adam moves every
        // coordinate by ≈ −η·sign(g).
        let mut m = model();
        let before = m.params();
        let g: Vec<f64> = (0..m.param_count())
            .map(|i| if i % 2 == 0 { 0.3 } else { -0.7 })
            .collect();
        OptimizerState::new(Optimizer::adam(), m.param_count()).apply(&mut m, &g, 0.01);
        for ((a, b), gi) in m.params().iter().zip(&before).zip(&g) {
            let step = a - b;
            assert!(
                (step + 0.01 * gi.signum()).abs() < 1e-4,
                "step {step} for g {gi}"
            );
        }
    }

    #[test]
    fn adam_accumulates_momentum() {
        let mut m = model();
        let dim = m.param_count();
        let mut st = OptimizerState::new(Optimizer::adam(), dim);
        let g = vec![1.0; dim];
        st.apply(&mut m, &g, 0.01);
        let after_one = m.params();
        // A second identical gradient keeps moving in the same direction.
        st.apply(&mut m, &g, 0.01);
        for (p2, p1) in m.params().iter().zip(&after_one) {
            assert!(p2 < p1);
        }
        assert_eq!(st.t, 2);
    }

    #[test]
    fn adam_adapts_to_coordinate_scale() {
        // A coordinate with consistently large gradients gets a relatively
        // smaller effective step than one with tiny gradients (per-coordinate
        // normalisation) — the property that helps under DP noise.
        let mut m = model();
        let dim = m.param_count();
        let mut st = OptimizerState::new(Optimizer::adam(), dim);
        let mut g = vec![0.0; dim];
        g[0] = 10.0;
        g[1] = 0.01;
        let before = m.params();
        for _ in 0..5 {
            st.apply(&mut m, &g, 0.01);
        }
        let after = m.params();
        let step0 = (after[0] - before[0]).abs();
        let step1 = (after[1] - before[1]).abs();
        // Both normalised toward η per step; ratio far below the 1000x raw
        // gradient ratio.
        assert!(step0 / step1 < 5.0, "steps {step0} vs {step1}");
    }

    #[test]
    #[should_panic(expected = "beta1 must be in")]
    fn bad_beta_rejected() {
        OptimizerState::new(
            Optimizer::Adam {
                beta1: 1.0,
                beta2: 0.999,
                eps: 1e-8,
            },
            4,
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_rejected() {
        let mut m = model();
        OptimizerState::new(Optimizer::Sgd, 1).apply(&mut m, &[0.0], 0.1);
    }
}

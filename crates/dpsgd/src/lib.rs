#![warn(missing_docs)]
//! Differentially private full-batch gradient descent (DPSGD) with
//! auditable transcripts.
//!
//! The query released at every training step is the *sum* of per-example
//! gradients clipped to norm `C`, perturbed with isotropic Gaussian noise:
//!
//! ```text
//! g̃_i = Σ_{x ∈ X} clip_C(∇ℓ(θ_i, x)) + N(0, σ_i²·I),   θ_{i+1} = θ_i − η·g̃_i/|X|
//! ```
//!
//! The paper's sensitivities are then literal (§6.1/§6.3): the global ℓ2
//! sensitivity of the sum is `C` under unbounded DP and `2C` under bounded
//! DP, and the estimated local sensitivity of the concrete neighbouring pair
//! is `‖ḡ_i(x̂₁)‖` (Eq. 18) or `‖ḡ_i(x̂₁) − ḡ_i(x̂₂)‖` (Eq. 17). σ_i is the
//! plan's noise multiplier `z` times whichever sensitivity the run is scaled
//! to — constant for global scaling, per-step for local scaling.
//!
//! Training runs emit a [`StepRecord`] per step carrying everything the DI
//! adversary is assumed to know (perturbed gradient, both differing-record
//! gradients, σ_i), either streamed to an observer or collected into a
//! [`Transcript`]. Batch-normalisation running statistics are treated as
//! public model state shared by both hypotheses (the federated-learning
//! reading of the paper's §6.1), which makes the gradient-sum difference
//! between D and D′ exactly the differing-record gradient difference.

pub mod clip;
pub mod config;
pub mod exec;
pub mod federated;
pub mod minibatch;
pub mod optimizer;
pub mod pair;
pub mod trainer;
pub mod transcript;

pub use clip::{clip_to_norm, clipped_gradient, AdaptiveClipConfig, ClippingStrategy};
pub use config::{BackendChoice, ComputeMode, DpsgdConfig, SensitivityScaling};
pub use exec::{
    batch_pool, batch_threads, clip_loop, clip_loop_mode, clip_loop_on, effective_batch_threads,
    set_batch_threads, ClipLoopOutput, CLIP_CHUNK,
};
pub use federated::{train_federated, FederatedConfig, FederatedOutcome, RoundRecord};
pub use minibatch::{train_minibatch_dpsgd, MinibatchConfig, MinibatchOutcome};
pub use optimizer::{Optimizer, OptimizerState};
pub use pair::NeighborPair;
pub use trainer::{train_collect, train_dpsgd, train_dpsgd_subsampled};
pub use transcript::{StepRecord, Transcript};

//! Neighbouring-dataset challenge pairs.

use dpaudit_datasets::{Dataset, NeighborSpec};
use dpaudit_dp::NeighborMode;
use dpaudit_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A fully materialised neighbouring pair `(D, D′)` with the differing
/// records identified — the shared knowledge of the DI experiment (paper
/// Experiment 2): both the trainer (challenger) and the adversary hold it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NeighborPair {
    /// The full dataset `D`.
    pub d: Dataset,
    /// The neighbour `D′` (one record replaced, or one removed).
    pub d_prime: Dataset,
    /// Index in `D` of the differing record x̂₁.
    pub x1_index: usize,
    /// The record x̂₂ that replaces x̂₁ in `D′` (bounded DP only).
    pub x2: Option<(Tensor, usize)>,
    /// Which neighbouring relation this pair instantiates.
    pub mode: NeighborMode,
}

impl NeighborPair {
    /// Materialise a pair from `D` and a [`NeighborSpec`].
    ///
    /// # Panics
    /// Panics on an out-of-range spec index.
    pub fn from_spec(d: &Dataset, spec: &NeighborSpec) -> Self {
        let d_prime = d.neighbor(spec);
        match spec {
            NeighborSpec::Replace {
                index,
                record,
                label,
            } => Self {
                d: d.clone(),
                d_prime,
                x1_index: *index,
                x2: Some((record.clone(), *label)),
                mode: NeighborMode::Bounded,
            },
            NeighborSpec::Remove { index } => Self {
                d: d.clone(),
                d_prime,
                x1_index: *index,
                x2: None,
                mode: NeighborMode::Unbounded,
            },
        }
    }

    /// The differing record x̂₁ ∈ D and its label.
    pub fn x1(&self) -> (&Tensor, usize) {
        (&self.d.xs[self.x1_index], self.d.ys[self.x1_index])
    }

    /// Dataset sizes `(|D|, |D′|)`.
    pub fn sizes(&self) -> (usize, usize) {
        (self.d.len(), self.d_prime.len())
    }

    /// The dataset the challenger trains on for challenge bit `b`
    /// (`b = 1 → D`, `b = 0 → D′`, as in Experiment 2).
    pub fn trained_dataset(&self, b: bool) -> &Dataset {
        if b {
            &self.d
        } else {
            &self.d_prime
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(v: f64) -> Tensor {
        Tensor::from_vec(&[3], vec![v, v, v])
    }

    fn d() -> Dataset {
        Dataset::new(vec![rec(0.0), rec(1.0), rec(2.0)], vec![0, 1, 2])
    }

    #[test]
    fn bounded_pair_from_replace_spec() {
        let spec = NeighborSpec::Replace {
            index: 1,
            record: rec(9.0),
            label: 7,
        };
        let pair = NeighborPair::from_spec(&d(), &spec);
        assert_eq!(pair.mode, NeighborMode::Bounded);
        assert_eq!(pair.sizes(), (3, 3));
        assert_eq!(pair.x1().1, 1);
        let (x2, y2) = pair.x2.as_ref().unwrap();
        assert_eq!(x2.data()[0], 9.0);
        assert_eq!(*y2, 7);
        assert_eq!(pair.d_prime.xs[1].data()[0], 9.0);
    }

    #[test]
    fn unbounded_pair_from_remove_spec() {
        let pair = NeighborPair::from_spec(&d(), &NeighborSpec::Remove { index: 0 });
        assert_eq!(pair.mode, NeighborMode::Unbounded);
        assert_eq!(pair.sizes(), (3, 2));
        assert!(pair.x2.is_none());
        assert_eq!(pair.x1().0.data()[0], 0.0);
        assert_eq!(pair.d_prime.ys, vec![1, 2]);
    }

    #[test]
    fn trained_dataset_selects_by_bit() {
        let pair = NeighborPair::from_spec(&d(), &NeighborSpec::Remove { index: 0 });
        assert_eq!(pair.trained_dataset(true).len(), 3);
        assert_eq!(pair.trained_dataset(false).len(), 2);
    }
}

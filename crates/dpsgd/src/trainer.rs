//! The DPSGD training loop.

use dpaudit_math::{l2_distance, l2_norm, GaussianSampler};
use dpaudit_nn::Sequential;
use dpaudit_obs as obs;
use rand::Rng;

use crate::clip::ClippingStrategy;
use crate::config::DpsgdConfig;
use crate::exec::{batch_pool, clip_loop_mode};
use crate::optimizer::OptimizerState;
use crate::pair::NeighborPair;
use crate::transcript::{StepRecord, Transcript};

/// Run `cfg.steps` full-batch DPSGD steps on `model`, training on `D` when
/// `train_on_d` (the challenge bit of Experiment 2) and on `D′` otherwise,
/// streaming one [`StepRecord`] per step to `observer`.
///
/// Protocol details the adversary is assumed to know (paper §6.1):
/// * The weight update divides the perturbed sum by the *public* constant
///   `|D|` regardless of which dataset was trained, so the update rule
///   itself carries no information about the challenge bit.
/// * Batch-normalisation statistics are refreshed from the trained batch
///   before the per-example gradients are taken and are considered part of
///   the released model state.
/// * The differing-record gradients `ḡ_i(x̂₁)`, `ḡ_i(x̂₂)` are evaluated at
///   the same state, so `L̂S_ĝᵢ` follows Eqs. 17/18 exactly.
/// * With adaptive clipping (§7 extension) the clip norm evolves as a
///   deterministic function of released quantities plus the unclipped
///   fraction, and the per-step bound in force is part of the record.
pub fn train_dpsgd<R: Rng + ?Sized>(
    model: &mut Sequential,
    pair: &NeighborPair,
    train_on_d: bool,
    cfg: &DpsgdConfig,
    rng: &mut R,
    mut observer: impl FnMut(StepRecord),
) {
    let data = pair.trained_dataset(train_on_d);
    assert!(!data.is_empty(), "train_dpsgd: empty training set");
    let public_n = pair.d.len() as f64;
    let dim = model.param_count();
    let layout = model.param_layout();
    let mut gauss = GaussianSampler::new();
    // Intra-trial parallelism for the clip loop (see `exec`): one pool per
    // training run, `None` when the knob says sequential.
    let pool = batch_pool();
    // Resolve the compute backend once per training run; every gemm below
    // (clip loop and differing-record gradients) routes through this handle.
    // Callers are expected to have validated availability at session setup,
    // so an unresolvable backend here is a programming error.
    let backend = cfg
        .backend
        .resolve()
        .unwrap_or_else(|e| panic!("train_dpsgd: {e}"));

    // The clipping strategy in force; adaptive clipping mutates the flat
    // norm between steps.
    let mut clipping = cfg.clipping.clone();
    let mut optimizer = OptimizerState::new(cfg.optimizer, dim);

    for step in 0..cfg.steps {
        model.update_norm_stats(&data.xs);
        let bound = clipping.total_bound();

        let clip_span = obs::span(obs::names::CLIP_SPAN);
        let clipped = clip_loop_mode(
            model,
            &data.xs,
            &data.ys,
            &clipping,
            &layout,
            pool.as_ref(),
            cfg.compute,
            backend,
        );
        let (clean_sum, loss_total, unclipped) =
            (clipped.clean_sum, clipped.loss_total, clipped.unclipped);
        drop(clip_span);

        let noise_span = obs::span(obs::names::NOISE_SPAN);
        // Differing-record gradients at the current public state.
        let (x1, y1) = pair.x1();
        let (_, mut grad_x1) = model.per_example_grad_on(backend, x1, y1);
        clipping.clip(&mut grad_x1, &layout);
        let grad_x2 = pair.x2.as_ref().map(|(x2, y2)| {
            let (_, mut g) = model.per_example_grad_on(backend, x2, *y2);
            clipping.clip(&mut g, &layout);
            g
        });
        let local_sensitivity = match &grad_x2 {
            Some(g2) => l2_distance(&grad_x1, g2),
            None => l2_norm(&grad_x1),
        };

        let sensitivity_used = cfg.sensitivity_for_step(local_sensitivity, bound);
        let sigma = cfg.noise_multiplier * sensitivity_used;

        let mut noisy_sum = clean_sum.clone();
        for v in &mut noisy_sum {
            *v += gauss.sample(rng, 0.0, sigma);
        }
        drop(noise_span);

        let update_span = obs::span(obs::names::UPDATE_SPAN);
        // θ updated from g̃/|D| (public divisor; see function docs) via the
        // configured optimizer — post-processing of the released gradient.
        let update: Vec<f64> = noisy_sum.iter().map(|v| v / public_n).collect();
        optimizer.apply(model, &update, cfg.learning_rate);

        // Steer the clip norm for the next step (adaptive extension).
        if let Some(adaptive) = &cfg.adaptive {
            if let ClippingStrategy::Flat(c) = &mut clipping {
                *c = adaptive.updated_norm(*c, unclipped as f64 / data.len() as f64);
            }
        }
        drop(update_span);

        if obs::enabled() {
            obs::counter(obs::names::STEPS, 1);
            obs::counter(obs::names::EXAMPLES_SEEN, data.len() as u64);
            obs::counter(
                obs::names::EXAMPLES_CLIPPED,
                (data.len() - unclipped) as u64,
            );
            // Effective per-step noise multiplier zᵢ = σᵢ / sᵢ against the
            // *realised* local sensitivity — the quantity the §6.4 ledger
            // composes. Under local scaling it sits at the planned z; under
            // global scaling its spread shows the wasted noise.
            if local_sensitivity > 0.0 {
                obs::observe(obs::names::NOISE_MULTIPLIER_HIST, sigma / local_sensitivity);
            }
        }

        observer(StepRecord {
            step,
            noisy_sum,
            clean_sum,
            grad_x1,
            grad_x2,
            local_sensitivity,
            clip_bound: bound,
            sensitivity_used,
            sigma,
            mean_loss: loss_total / data.len() as f64,
        });
    }
}

/// Run `cfg.steps` Poisson-subsampled DPSGD steps on `model` for the DI
/// challenge protocol, streaming one [`StepRecord`] per step to `observer`.
///
/// The mini-batch counterpart of [`train_dpsgd`]: per step every record of
/// the trained dataset enters the batch independently with probability `q`
/// (drawn from `sample_rng`, a stream separate from the noise stream so
/// callers can keep their full-batch seed conventions untouched), the
/// clipped per-example gradients of the batch are summed, Gaussian noise is
/// added, and the update divides by the *public* expected batch size
/// `q·|D|`.
///
/// Differences from the full-batch audit protocol, dictated by the
/// subsampled Gaussian RDP accountant the privacy claim composes through
/// (`add_subsampled_gaussian_step`):
/// * Noise is always scaled to the clip bound (`σ = z·C`, the add/remove
///   sensitivity of the clipped sum — the convention of
///   [`crate::minibatch`]); local-sensitivity scaling would break the
///   amplification analysis. The per-step local sensitivity is still
///   estimated and recorded for diagnostics.
/// * The stored hypothesis gradients condition on the differing record
///   having been sampled, so the adversary's centers are exact only for
///   steps that included it — the information loss that amplification by
///   subsampling formalises.
///
/// # Panics
/// Panics on an empty training set or `q` outside `(0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn train_dpsgd_subsampled<R: Rng + ?Sized, S: Rng + ?Sized>(
    model: &mut Sequential,
    pair: &NeighborPair,
    train_on_d: bool,
    cfg: &DpsgdConfig,
    q: f64,
    noise_rng: &mut R,
    sample_rng: &mut S,
    mut observer: impl FnMut(StepRecord),
) {
    let data = pair.trained_dataset(train_on_d);
    assert!(
        !data.is_empty(),
        "train_dpsgd_subsampled: empty training set"
    );
    assert!(
        q.is_finite() && q > 0.0 && q <= 1.0,
        "train_dpsgd_subsampled: q must be in (0, 1], got {q}"
    );
    let public_n = pair.d.len() as f64;
    let expected_batch = (q * public_n).max(1.0);
    let dim = model.param_count();
    let layout = model.param_layout();
    let mut gauss = GaussianSampler::new();
    let backend = cfg
        .backend
        .resolve()
        .unwrap_or_else(|e| panic!("train_dpsgd_subsampled: {e}"));

    let mut clipping = cfg.clipping.clone();
    let mut optimizer = OptimizerState::new(cfg.optimizer, dim);

    for step in 0..cfg.steps {
        // Poisson sampling: each record independently with probability q,
        // from the dedicated sampling stream.
        let batch: Vec<usize> = (0..data.len())
            .filter(|_| sample_rng.gen::<f64>() < q)
            .collect();

        if !batch.is_empty() {
            let batch_xs: Vec<_> = batch.iter().map(|&i| data.xs[i].clone()).collect();
            model.update_norm_stats(&batch_xs);
        }
        let bound = clipping.total_bound();

        let clip_span = obs::span(obs::names::CLIP_SPAN);
        let mut clean_sum = vec![0.0; dim];
        let mut loss_total = 0.0;
        let mut unclipped = 0usize;
        for &i in &batch {
            let (loss, mut g) = model.per_example_grad_on(backend, &data.xs[i], data.ys[i]);
            let norm = l2_norm(&g);
            clipping.clip(&mut g, &layout);
            if norm <= bound {
                unclipped += 1;
            }
            loss_total += loss;
            for (a, b) in clean_sum.iter_mut().zip(&g) {
                *a += b;
            }
        }
        drop(clip_span);

        let noise_span = obs::span(obs::names::NOISE_SPAN);
        // Differing-record gradients at the current public state, recorded
        // for the adversary's (batch-conditional) hypothesis centers and
        // the local-sensitivity diagnostics.
        let (x1, y1) = pair.x1();
        let (_, mut grad_x1) = model.per_example_grad_on(backend, x1, y1);
        clipping.clip(&mut grad_x1, &layout);
        let grad_x2 = pair.x2.as_ref().map(|(x2, y2)| {
            let (_, mut g) = model.per_example_grad_on(backend, x2, *y2);
            clipping.clip(&mut g, &layout);
            g
        });
        let local_sensitivity = match &grad_x2 {
            Some(g2) => l2_distance(&grad_x1, g2),
            None => l2_norm(&grad_x1),
        };

        // σ = z·C: the add/remove sensitivity the subsampled accountant
        // assumes (see function docs).
        let sensitivity_used = bound;
        let sigma = cfg.noise_multiplier * sensitivity_used;

        let mut noisy_sum = clean_sum.clone();
        for v in &mut noisy_sum {
            *v += gauss.sample(noise_rng, 0.0, sigma);
        }
        drop(noise_span);

        let update_span = obs::span(obs::names::UPDATE_SPAN);
        let update: Vec<f64> = noisy_sum.iter().map(|v| v / expected_batch).collect();
        optimizer.apply(model, &update, cfg.learning_rate);

        if let Some(adaptive) = &cfg.adaptive {
            if let ClippingStrategy::Flat(c) = &mut clipping {
                if !batch.is_empty() {
                    *c = adaptive.updated_norm(*c, unclipped as f64 / batch.len() as f64);
                }
            }
        }
        drop(update_span);

        if obs::enabled() {
            obs::counter(obs::names::STEPS, 1);
            obs::counter(obs::names::EXAMPLES_SEEN, batch.len() as u64);
            obs::counter(
                obs::names::EXAMPLES_CLIPPED,
                (batch.len() - unclipped) as u64,
            );
            if local_sensitivity > 0.0 {
                obs::observe(obs::names::NOISE_MULTIPLIER_HIST, sigma / local_sensitivity);
            }
        }

        observer(StepRecord {
            step,
            noisy_sum,
            clean_sum,
            grad_x1,
            grad_x2,
            local_sensitivity,
            clip_bound: bound,
            sensitivity_used,
            sigma,
            mean_loss: if batch.is_empty() {
                0.0
            } else {
                loss_total / batch.len() as f64
            },
        });
    }
}

/// [`train_dpsgd`] collecting the records into a [`Transcript`].
pub fn train_collect<R: Rng + ?Sized>(
    model: &mut Sequential,
    pair: &NeighborPair,
    train_on_d: bool,
    cfg: &DpsgdConfig,
    rng: &mut R,
) -> Transcript {
    let mut steps = Vec::with_capacity(cfg.steps);
    train_dpsgd(model, pair, train_on_d, cfg, rng, |r| steps.push(r));
    Transcript {
        steps,
        trained_on_d: train_on_d,
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clip::{clipped_gradient, AdaptiveClipConfig};
    use crate::config::SensitivityScaling;
    use dpaudit_datasets::{generate_purchase, NeighborSpec};
    use dpaudit_dp::NeighborMode;
    use dpaudit_math::{axpy, seeded_rng};
    use dpaudit_nn::{purchase_mlp, Layer, Sequential};
    use dpaudit_nn::{Dense, MNIST_CLASSES};
    use dpaudit_tensor::Tensor;

    /// A small synthetic classification setup that trains in milliseconds.
    fn tiny_setup(seed: u64) -> (Sequential, NeighborPair) {
        let mut rng = seeded_rng(seed);
        let model = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 8, 6)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 6, 3)),
        ]);
        let mut d = dpaudit_datasets::Dataset::empty();
        for i in 0..10 {
            let x: Vec<f64> = (0..8)
                .map(|j| ((i * 13 + j * 7) % 11) as f64 / 11.0)
                .collect();
            d.push(Tensor::from_vec(&[8], x), i % 3);
        }
        let pair = NeighborPair::from_spec(
            &d,
            &NeighborSpec::Replace {
                index: 2,
                record: Tensor::full(&[8], 0.9),
                label: 1,
            },
        );
        (model, pair)
    }

    fn cfg(scaling: SensitivityScaling) -> DpsgdConfig {
        DpsgdConfig::new(1.0, 0.05, 5, NeighborMode::Bounded, 2.0, scaling)
    }

    #[test]
    fn transcript_has_one_record_per_step() {
        let (mut model, pair) = tiny_setup(1);
        let t = train_collect(
            &mut model,
            &pair,
            true,
            &cfg(SensitivityScaling::Global),
            &mut seeded_rng(2),
        );
        assert_eq!(t.steps.len(), 5);
        assert!(t.trained_on_d);
        for (i, s) in t.steps.iter().enumerate() {
            assert_eq!(s.step, i);
            assert_eq!(s.noisy_sum.len(), model.param_count());
            assert_eq!(s.clean_sum.len(), model.param_count());
            assert!(s.mean_loss.is_finite());
            assert_eq!(s.clip_bound, 1.0);
        }
    }

    #[test]
    fn global_scaling_uses_constant_sigma() {
        let (mut model, pair) = tiny_setup(3);
        let c = cfg(SensitivityScaling::Global);
        let t = train_collect(&mut model, &pair, true, &c, &mut seeded_rng(4));
        for s in &t.steps {
            // Bounded GS = 2C = 2, z = 2 → σ = 4 everywhere.
            assert!((s.sigma - 4.0).abs() < 1e-12);
            assert_eq!(s.sensitivity_used, 2.0);
        }
    }

    #[test]
    fn local_scaling_tracks_per_step_ls() {
        let (mut model, pair) = tiny_setup(5);
        let c = cfg(SensitivityScaling::Local);
        let t = train_collect(&mut model, &pair, true, &c, &mut seeded_rng(6));
        for s in &t.steps {
            assert!((s.sigma - 2.0 * s.sensitivity_used).abs() < 1e-12);
            assert!(
                (s.sensitivity_used - s.local_sensitivity).abs() < 1e-12
                    || s.local_sensitivity < c.ls_floor
            );
        }
    }

    #[test]
    fn local_sensitivity_below_global_bound() {
        let (mut model, pair) = tiny_setup(7);
        let c = cfg(SensitivityScaling::Local);
        let t = train_collect(&mut model, &pair, true, &c, &mut seeded_rng(8));
        for s in &t.steps {
            // ‖ḡ(x̂₁) − ḡ(x̂₂)‖ ≤ 2C by the triangle inequality.
            assert!(s.local_sensitivity <= 2.0 * c.clip_bound() + 1e-9);
        }
    }

    #[test]
    fn hypothesis_centers_match_direct_computation() {
        // Train on D, then verify that the derived D′-center equals the
        // clipped-gradient sum computed directly on D′ at the same state.
        let (model0, pair) = tiny_setup(9);
        let c = cfg(SensitivityScaling::Global);
        let mut model = model0.clone();
        let mut records = Vec::new();
        let mut states = Vec::new();
        train_dpsgd(&mut model, &pair, true, &c, &mut seeded_rng(10), |r| {
            records.push(r);
        });
        // Re-run the public update rule, snapshotting state before each step.
        let mut model2 = model0.clone();
        for r in &records {
            model2.update_norm_stats(&pair.d.xs);
            states.push(model2.clone());
            let update: Vec<f64> = r
                .noisy_sum
                .iter()
                .map(|v| v / pair.d.len() as f64)
                .collect();
            model2.gradient_step(&update, c.learning_rate);
        }
        for (r, state) in records.iter().zip(&states) {
            let (_, cdp) = r.hypothesis_centers(true, NeighborMode::Bounded);
            let mut direct = vec![0.0; state.param_count()];
            for (x, &y) in pair.d_prime.xs.iter().zip(&pair.d_prime.ys) {
                let (_, g) = clipped_gradient(state, x, y, c.clip_bound());
                axpy(1.0, &g, &mut direct);
            }
            let err = l2_distance(&cdp, &direct);
            assert!(err < 1e-9, "step {}: center mismatch {err}", r.step);
        }
    }

    #[test]
    fn training_on_d_vs_d_prime_yields_different_sums() {
        let (model, pair) = tiny_setup(11);
        let c = cfg(SensitivityScaling::Global);
        let mut m1 = model.clone();
        let mut m2 = model.clone();
        let t1 = train_collect(&mut m1, &pair, true, &c, &mut seeded_rng(12));
        let t2 = train_collect(&mut m2, &pair, false, &c, &mut seeded_rng(12));
        assert_ne!(t1.steps[0].clean_sum, t2.steps[0].clean_sum);
        // Same RNG, same sensitivity scaling → same noise; first-step
        // difference of clean sums equals g2 − g1 exactly.
        let diff: Vec<f64> = t1.steps[0]
            .clean_sum
            .iter()
            .zip(&t2.steps[0].clean_sum)
            .map(|(a, b)| a - b)
            .collect();
        let expect: Vec<f64> = t1.steps[0]
            .grad_x1
            .iter()
            .zip(t1.steps[0].grad_x2.as_ref().unwrap())
            .map(|(g1, g2)| g1 - g2)
            .collect();
        assert!(l2_distance(&diff, &expect) < 1e-9);
    }

    #[test]
    fn noise_perturbs_the_sum() {
        let (mut model, pair) = tiny_setup(13);
        let t = train_collect(
            &mut model,
            &pair,
            true,
            &cfg(SensitivityScaling::Global),
            &mut seeded_rng(14),
        );
        let s = &t.steps[0];
        assert!(l2_distance(&s.noisy_sum, &s.clean_sum) > 0.0);
    }

    #[test]
    fn adaptive_clipping_moves_the_bound() {
        let (mut model, pair) = tiny_setup(15);
        let c = cfg(SensitivityScaling::Global).with_adaptive(AdaptiveClipConfig::new(0.5, 0.5));
        let t = train_collect(&mut model, &pair, true, &c, &mut seeded_rng(16));
        let bounds: Vec<f64> = t.steps.iter().map(|s| s.clip_bound).collect();
        assert_eq!(bounds[0], 1.0);
        // The bound must actually evolve across steps.
        assert!(
            bounds.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-12),
            "{bounds:?}"
        );
        // And σ follows the evolving GS = 2·bound.
        for s in &t.steps {
            assert!((s.sigma - 2.0 * 2.0 * s.clip_bound).abs() < 1e-12);
        }
    }

    #[test]
    fn per_layer_clipping_bounds_each_segment() {
        let (model0, pair) = tiny_setup(17);
        let layout = model0.param_layout();
        assert_eq!(layout.len(), 2);
        let c = DpsgdConfig::with_clipping(
            ClippingStrategy::PerLayer(vec![0.5, 0.25]),
            0.05,
            3,
            NeighborMode::Bounded,
            2.0,
            SensitivityScaling::Local,
        );
        let mut model = model0.clone();
        let t = train_collect(&mut model, &pair, true, &c, &mut seeded_rng(18));
        for s in &t.steps {
            // The stored differing-record gradient obeys per-layer bounds.
            assert!(l2_norm(&s.grad_x1[..layout[0]]) <= 0.5 + 1e-9);
            assert!(l2_norm(&s.grad_x1[layout[0]..]) <= 0.25 + 1e-9);
            assert_eq!(s.clip_bound, c.clip_bound());
        }
    }

    #[test]
    fn adam_changes_weights_but_not_first_release() {
        // Adam is post-processing: with the same seed, the *first* released
        // noisy gradient is identical to the SGD run (same model state,
        // same noise), while the weight trajectories then diverge.
        let (model, pair) = tiny_setup(19);
        let mut sgd_cfg = cfg(SensitivityScaling::Global);
        sgd_cfg.optimizer = crate::optimizer::Optimizer::Sgd;
        let mut adam_cfg = cfg(SensitivityScaling::Global);
        adam_cfg.optimizer = crate::optimizer::Optimizer::adam();
        let mut m1 = model.clone();
        let mut m2 = model.clone();
        let t_sgd = train_collect(&mut m1, &pair, true, &sgd_cfg, &mut seeded_rng(20));
        let t_adam = train_collect(&mut m2, &pair, true, &adam_cfg, &mut seeded_rng(20));
        assert_eq!(t_sgd.steps[0].noisy_sum, t_adam.steps[0].noisy_sum);
        assert_ne!(m1.params(), m2.params());
        // Later releases differ because the weight paths diverged.
        assert_ne!(t_sgd.steps[4].clean_sum, t_adam.steps[4].clean_sum);
    }

    #[test]
    fn f32_compute_mode_tracks_f64_within_tolerance() {
        // Full training runs with identical seeds, differing only in the
        // storage precision of the clip loop: the noise draws coincide, so
        // the released sums and the weight trajectory differ only by f32
        // rounding, which must stay inside a narrow relative band.
        let (model, pair) = tiny_setup(21);
        let c64 = cfg(SensitivityScaling::Global);
        let mut c32 = cfg(SensitivityScaling::Global);
        c32.compute = crate::config::ComputeMode::F32;
        let mut m64 = model.clone();
        let mut m32 = model;
        let t64 = train_collect(&mut m64, &pair, true, &c64, &mut seeded_rng(22));
        let t32 = train_collect(&mut m32, &pair, true, &c32, &mut seeded_rng(22));
        for (s64, s32) in t64.steps.iter().zip(&t32.steps) {
            let err = l2_distance(&s64.clean_sum, &s32.clean_sum);
            let scale = l2_norm(&s64.clean_sum).max(1.0);
            assert!(
                err < 1e-3 * scale,
                "step {}: clean_sum drift {err} vs scale {scale}",
                s64.step
            );
            assert!((s64.mean_loss - s32.mean_loss).abs() < 1e-3);
        }
        let w_err = l2_distance(&m64.params(), &m32.params());
        assert!(w_err < 1e-3, "final weight drift {w_err}");
    }

    /// Tolerance-equivalence gate at the train-step level: a full training
    /// run on the BLAS backend must track the native run (same seeds, so
    /// identical noise draws) within a narrow relative band — the same shape
    /// of guarantee the f32 compute mode carries against the f64 oracle.
    #[cfg(feature = "blas")]
    #[test]
    fn blas_backend_training_tracks_native_within_tolerance() {
        let (model, pair) = tiny_setup(21);
        let c_native = cfg(SensitivityScaling::Global);
        let mut c_blas = cfg(SensitivityScaling::Global);
        c_blas.backend = crate::config::BackendChoice::Blas;
        let mut m_native = model.clone();
        let mut m_blas = model;
        let t_native = train_collect(&mut m_native, &pair, true, &c_native, &mut seeded_rng(22));
        let t_blas = train_collect(&mut m_blas, &pair, true, &c_blas, &mut seeded_rng(22));
        for (sn, sb) in t_native.steps.iter().zip(&t_blas.steps) {
            let err = l2_distance(&sn.clean_sum, &sb.clean_sum);
            let scale = l2_norm(&sn.clean_sum).max(1.0);
            assert!(
                err < 1e-9 * scale,
                "step {}: clean_sum drift {err} vs scale {scale}",
                sn.step
            );
            assert!((sn.mean_loss - sb.mean_loss).abs() < 1e-9);
            assert!((sn.local_sensitivity - sb.local_sensitivity).abs() < 1e-9);
        }
        let w_err = l2_distance(&m_native.params(), &m_blas.params());
        assert!(w_err < 1e-9, "final weight drift {w_err}");
    }

    #[test]
    fn subsampled_records_are_deterministic_per_seed_pair() {
        // Same noise + sampling seeds ⇒ byte-identical step records (the
        // minibatch-audit determinism invariant: same seed, same minibatch
        // indices, same releases).
        let (model0, pair) = tiny_setup(23);
        let c = cfg(SensitivityScaling::Local);
        let run = || {
            let mut model = model0.clone();
            let mut records = Vec::new();
            train_dpsgd_subsampled(
                &mut model,
                &pair,
                true,
                &c,
                0.5,
                &mut seeded_rng(24),
                &mut seeded_rng(25),
                |r| records.push(r),
            );
            (records, model.params())
        };
        let (r1, w1) = run();
        let (r2, w2) = run();
        assert_eq!(r1.len(), 5);
        for (a, b) in r1.iter().zip(&r2) {
            assert_eq!(a.noisy_sum, b.noisy_sum);
            assert_eq!(a.clean_sum, b.clean_sum);
            assert_eq!(a.mean_loss.to_bits(), b.mean_loss.to_bits());
        }
        assert_eq!(w1, w2);
        // A different sampling stream changes the batches (and the sums)
        // while σ stays pinned to z·C.
        let mut model = model0.clone();
        let mut other = Vec::new();
        train_dpsgd_subsampled(
            &mut model,
            &pair,
            true,
            &c,
            0.5,
            &mut seeded_rng(24),
            &mut seeded_rng(99),
            |r| other.push(r),
        );
        assert_ne!(
            r1.iter().map(|r| r.clean_sum.clone()).collect::<Vec<_>>(),
            other
                .iter()
                .map(|r| r.clean_sum.clone())
                .collect::<Vec<_>>()
        );
        for r in &r1 {
            // z = 2, C = 1 → σ = 2 regardless of the realised LS.
            assert!((r.sigma - 2.0).abs() < 1e-12);
            assert_eq!(r.sensitivity_used, 1.0);
            assert!(r.local_sensitivity >= 0.0);
        }
    }

    #[test]
    fn subsampled_q_one_sums_the_whole_dataset() {
        let (model0, pair) = tiny_setup(27);
        let c = cfg(SensitivityScaling::Global);
        let mut model = model0.clone();
        let mut records = Vec::new();
        train_dpsgd_subsampled(
            &mut model,
            &pair,
            true,
            &c,
            1.0,
            &mut seeded_rng(28),
            &mut seeded_rng(29),
            |r| records.push(r),
        );
        // q = 1 includes every record: the clean sum equals the full-batch
        // clipped sum at the same state (first step shares θ₀).
        let mut m2 = model0.clone();
        let t = train_collect(&mut m2, &pair, true, &c, &mut seeded_rng(28));
        assert!(l2_distance(&records[0].clean_sum, &t.steps[0].clean_sum) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "q must be in")]
    fn subsampled_rejects_degenerate_rate() {
        let (mut model, pair) = tiny_setup(31);
        train_dpsgd_subsampled(
            &mut model,
            &pair,
            true,
            &cfg(SensitivityScaling::Local),
            0.0,
            &mut seeded_rng(1),
            &mut seeded_rng(2),
            |_| {},
        );
    }

    #[test]
    fn purchase_mlp_smoke_run() {
        // One realistic end-to-end step on the real architecture.
        let mut rng = seeded_rng(15);
        let data = generate_purchase(&mut rng, 12);
        let pair = NeighborPair::from_spec(&data, &NeighborSpec::Remove { index: 0 });
        let mut model = purchase_mlp(&mut rng);
        let c = DpsgdConfig::new(
            3.0,
            0.005,
            2,
            NeighborMode::Unbounded,
            5.0,
            SensitivityScaling::Local,
        );
        let t = train_collect(&mut model, &pair, true, &c, &mut rng);
        assert_eq!(t.steps.len(), 2);
        assert!(t.steps[0].local_sensitivity > 0.0);
        assert!(t.steps[0].local_sensitivity <= 3.0 + 1e-9);
        let _ = MNIST_CLASSES; // silence unused import in some cfg combinations
    }
}

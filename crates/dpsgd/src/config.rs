//! DPSGD run configuration.

use dpaudit_dp::{gradient_sum_global_sensitivity, NeighborMode};
use serde::{Deserialize, Serialize};

use crate::clip::{AdaptiveClipConfig, ClippingStrategy};
use crate::optimizer::Optimizer;

/// Which sensitivity σ_i is scaled to (the paper's central ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensitivityScaling {
    /// σ_i = z · GS (GS = C unbounded, 2C bounded) — constant noise while
    /// the clipping norm is constant.
    Global,
    /// σ_i = z · L̂S_ĝᵢ (Eqs. 17/18) — noise tracks the per-step estimated
    /// local sensitivity of the concrete neighbouring pair.
    Local,
}

impl std::fmt::Display for SensitivityScaling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SensitivityScaling::Global => write!(f, "GS"),
            SensitivityScaling::Local => write!(f, "LS"),
        }
    }
}

/// Numeric storage mode of the batched per-example gradient pipeline.
///
/// [`ComputeMode::F64`] (the default) is the determinism oracle: every
/// intermediate is double precision and results are bit-identical across
/// thread counts and kernel backends. [`ComputeMode::F32`] stores the
/// `[B, param]` per-example gradient buffers and activations in single
/// precision — halving the memory traffic of the hot loop and doubling
/// SIMD lane width — while the clipped-gradient *accumulation*, the loss
/// head, and everything downstream (sensitivity, noise, optimizer) stay
/// f64. f32 runs are tolerance-equivalent to the oracle, not bit-identical,
/// and are opt-in per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ComputeMode {
    /// Double-precision storage end to end (bit-reproducible oracle).
    #[default]
    F64,
    /// Single-precision gradient storage with f64 accumulation.
    F32,
}

impl std::fmt::Display for ComputeMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComputeMode::F64 => write!(f, "f64"),
            ComputeMode::F32 => write!(f, "f32"),
        }
    }
}

/// Which compute backend serves the gemm-shaped hot path of the batched
/// gradient pipeline.
///
/// [`BackendChoice::Native`] (the default) is the in-tree scalar-tile +
/// SIMD-dispatch kernels — the byte-stability oracle every determinism test
/// pins. [`BackendChoice::Blas`] routes the gemms through an external CBLAS
/// `dgemm`/`sgemm` (cargo feature `blas`); blocked BLAS kernels sum in a
/// different order, so blas runs are tolerance-equivalent to the oracle, not
/// bit-identical, and are opt-in per run. The choice is resolved to a
/// [`dpaudit_tensor::Backend`] handle once per training run and recorded in
/// the run's header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BackendChoice {
    /// In-tree scalar/SIMD kernels (bit-reproducible oracle).
    #[default]
    Native,
    /// External CBLAS gemms (tolerance-equivalent, requires `--features blas`).
    Blas,
}

impl BackendChoice {
    /// The backend's header name, as accepted by
    /// [`dpaudit_tensor::Backend::resolve`].
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Native => "native",
            BackendChoice::Blas => "blas",
        }
    }

    /// Resolve to a compute-backend handle.
    ///
    /// # Errors
    /// Errors when the backend is not compiled into this binary (the message
    /// names the cargo feature that would enable it).
    pub fn resolve(self) -> Result<dpaudit_tensor::Backend, String> {
        dpaudit_tensor::Backend::resolve(self.name())
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one DPSGD training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpsgdConfig {
    /// Per-example clipping strategy (the paper: flat `C = 3`).
    pub clipping: ClippingStrategy,
    /// Optional adaptive-clipping controller (§7 extension; flat clipping
    /// only).
    pub adaptive: Option<AdaptiveClipConfig>,
    /// Learning rate `η` (applied to the mean perturbed gradient).
    pub learning_rate: f64,
    /// Number of full-batch steps `k` (= epochs in the paper's setup).
    pub steps: usize,
    /// Neighbouring-dataset relation.
    pub mode: NeighborMode,
    /// Noise multiplier `z = σ_i/Δf_i` — from [`dpaudit_dp::NoisePlan`].
    pub noise_multiplier: f64,
    /// Whether σ_i is scaled to global or estimated local sensitivity.
    pub scaling: SensitivityScaling,
    /// Update rule applied to the released gradient (post-processing; no
    /// effect on privacy or on the adversary's view).
    #[serde(default)]
    pub optimizer: Optimizer,
    /// Floor for the local sensitivity to keep σ_i positive when the two
    /// differing-record gradients coincide.
    pub ls_floor: f64,
    /// Storage precision of the batched gradient pipeline (f64 default).
    #[serde(default)]
    pub compute: ComputeMode,
    /// Compute backend for the gemm-shaped hot path (native default).
    #[serde(default)]
    pub backend: BackendChoice,
}

impl DpsgdConfig {
    /// Flat-clipping configuration (the paper's setup); `ls_floor` defaults
    /// to `1e-6 · C`.
    ///
    /// # Panics
    /// Panics on non-positive clip norm, learning rate, steps or noise
    /// multiplier.
    pub fn new(
        clip_norm: f64,
        learning_rate: f64,
        steps: usize,
        mode: NeighborMode,
        noise_multiplier: f64,
        scaling: SensitivityScaling,
    ) -> Self {
        Self::with_clipping(
            ClippingStrategy::Flat(clip_norm),
            learning_rate,
            steps,
            mode,
            noise_multiplier,
            scaling,
        )
    }

    /// General constructor accepting any [`ClippingStrategy`].
    ///
    /// # Panics
    /// Panics on invalid clipping norms, learning rate, steps or noise
    /// multiplier.
    pub fn with_clipping(
        clipping: ClippingStrategy,
        learning_rate: f64,
        steps: usize,
        mode: NeighborMode,
        noise_multiplier: f64,
        scaling: SensitivityScaling,
    ) -> Self {
        let bound = clipping.total_bound(); // validates the norms
        assert!(
            learning_rate > 0.0,
            "DpsgdConfig: learning rate must be positive"
        );
        assert!(steps > 0, "DpsgdConfig: steps must be positive");
        assert!(
            noise_multiplier.is_finite() && noise_multiplier > 0.0,
            "DpsgdConfig: noise multiplier must be positive"
        );
        Self {
            clipping,
            adaptive: None,
            learning_rate,
            steps,
            mode,
            noise_multiplier,
            scaling,
            optimizer: Optimizer::Sgd,
            ls_floor: 1e-6 * bound,
            compute: ComputeMode::F64,
            backend: BackendChoice::Native,
        }
    }

    /// Enable adaptive clipping (Thakkar et al., §7 extension).
    ///
    /// # Panics
    /// Panics when the clipping strategy is not flat — the adaptive
    /// controller steers a single scalar norm.
    pub fn with_adaptive(mut self, adaptive: AdaptiveClipConfig) -> Self {
        assert!(
            matches!(self.clipping, ClippingStrategy::Flat(_)),
            "DpsgdConfig: adaptive clipping requires a flat clipping norm"
        );
        self.adaptive = Some(adaptive);
        self
    }

    /// The bound on one clipped per-example gradient's norm at the *start*
    /// of training (adaptive clipping evolves it per step).
    pub fn clip_bound(&self) -> f64 {
        self.clipping.total_bound()
    }

    /// The global sensitivity of the clipped gradient sum at a given
    /// per-example bound (C unbounded, 2C bounded).
    pub fn global_sensitivity_at(&self, bound: f64) -> f64 {
        gradient_sum_global_sensitivity(bound, self.mode)
    }

    /// The Δf actually used at a step whose estimated local sensitivity is
    /// `ls` and whose per-example bound is `bound`, respecting the scaling
    /// strategy and the floor.
    pub fn sensitivity_for_step(&self, ls: f64, bound: f64) -> f64 {
        match self.scaling {
            SensitivityScaling::Global => self.global_sensitivity_at(bound),
            SensitivityScaling::Local => ls.max(self.ls_floor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(mode: NeighborMode, scaling: SensitivityScaling) -> DpsgdConfig {
        DpsgdConfig::new(3.0, 0.005, 30, mode, 10.0, scaling)
    }

    #[test]
    fn global_sensitivity_per_mode() {
        let c = cfg(NeighborMode::Unbounded, SensitivityScaling::Global);
        assert_eq!(c.global_sensitivity_at(c.clip_bound()), 3.0);
        let c = cfg(NeighborMode::Bounded, SensitivityScaling::Global);
        assert_eq!(c.global_sensitivity_at(c.clip_bound()), 6.0);
    }

    #[test]
    fn step_sensitivity_global_ignores_ls() {
        let c = cfg(NeighborMode::Bounded, SensitivityScaling::Global);
        assert_eq!(c.sensitivity_for_step(0.5, 3.0), 6.0);
        assert_eq!(c.sensitivity_for_step(100.0, 3.0), 6.0);
        // Adaptive clipping changes the bound, and GS follows it.
        assert_eq!(c.sensitivity_for_step(0.5, 1.0), 2.0);
    }

    #[test]
    fn step_sensitivity_local_uses_ls_with_floor() {
        let c = cfg(NeighborMode::Bounded, SensitivityScaling::Local);
        assert_eq!(c.sensitivity_for_step(0.5, 3.0), 0.5);
        assert_eq!(c.sensitivity_for_step(0.0, 3.0), 3e-6);
    }

    #[test]
    fn per_layer_config_bound_is_rss() {
        let c = DpsgdConfig::with_clipping(
            ClippingStrategy::PerLayer(vec![3.0, 4.0]),
            0.005,
            30,
            NeighborMode::Unbounded,
            1.0,
            SensitivityScaling::Global,
        );
        assert!((c.clip_bound() - 5.0).abs() < 1e-12);
        assert!((c.ls_floor - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn adaptive_requires_flat() {
        let c = cfg(NeighborMode::Bounded, SensitivityScaling::Global)
            .with_adaptive(AdaptiveClipConfig::new(0.5, 0.2));
        assert!(c.adaptive.is_some());
    }

    #[test]
    #[should_panic(expected = "requires a flat clipping norm")]
    fn adaptive_rejected_for_per_layer() {
        DpsgdConfig::with_clipping(
            ClippingStrategy::PerLayer(vec![1.0, 1.0]),
            0.005,
            30,
            NeighborMode::Bounded,
            1.0,
            SensitivityScaling::Global,
        )
        .with_adaptive(AdaptiveClipConfig::new(0.5, 0.2));
    }

    #[test]
    fn display_labels() {
        assert_eq!(SensitivityScaling::Global.to_string(), "GS");
        assert_eq!(SensitivityScaling::Local.to_string(), "LS");
        assert_eq!(ComputeMode::F64.to_string(), "f64");
        assert_eq!(ComputeMode::F32.to_string(), "f32");
        assert_eq!(BackendChoice::Native.to_string(), "native");
        assert_eq!(BackendChoice::Blas.to_string(), "blas");
    }

    #[test]
    fn compute_mode_defaults_to_f64() {
        let c = cfg(NeighborMode::Bounded, SensitivityScaling::Global);
        assert_eq!(c.compute, ComputeMode::F64);
    }

    #[test]
    fn backend_defaults_to_native_and_resolves() {
        let c = cfg(NeighborMode::Bounded, SensitivityScaling::Global);
        assert_eq!(c.backend, BackendChoice::Native);
        assert_eq!(
            c.backend.resolve().unwrap(),
            dpaudit_tensor::Backend::native()
        );
    }

    #[test]
    #[should_panic(expected = "steps must be positive")]
    fn zero_steps_rejected() {
        DpsgdConfig::new(
            3.0,
            0.005,
            0,
            NeighborMode::Bounded,
            1.0,
            SensitivityScaling::Global,
        );
    }
}

//! Training transcripts: what the DI adversary observes.

use dpaudit_dp::NeighborMode;
use serde::{Deserialize, Serialize};

use crate::config::DpsgdConfig;

/// Everything produced by one DPSGD step.
///
/// `clean_sum` is the unperturbed clipped-gradient sum over the dataset that
/// was actually trained on; `grad_x1`/`grad_x2` are the clipped gradients of
/// the two differing records evaluated at the same model state. Because the
/// model state (weights and normalisation statistics) is public, these
/// values are identical to what the adversary would compute itself from
/// (θ_i, D, D′) — storing them is an optimisation, not an information leak.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepRecord {
    /// Zero-based step index.
    pub step: usize,
    /// The released perturbed gradient sum g̃_i (the mechanism output).
    pub noisy_sum: Vec<f64>,
    /// The clean clipped-gradient sum over the trained dataset.
    pub clean_sum: Vec<f64>,
    /// Clipped gradient of x̂₁ (the differing record in D) at θ_i.
    pub grad_x1: Vec<f64>,
    /// Clipped gradient of x̂₂ (the replacement record, bounded DP only).
    pub grad_x2: Option<Vec<f64>>,
    /// Estimated local sensitivity L̂S_ĝᵢ at this step (Eqs. 17/18).
    pub local_sensitivity: f64,
    /// Per-example clip bound in force at this step (constant unless
    /// adaptive clipping is enabled).
    pub clip_bound: f64,
    /// The Δf the noise was actually scaled to.
    pub sensitivity_used: f64,
    /// Noise standard deviation σ_i = z·Δf_i.
    pub sigma: f64,
    /// Mean training loss over the batch at this step (diagnostics).
    pub mean_loss: f64,
}

impl StepRecord {
    /// The hypothesis centers `(ĝ_i(D), ĝ_i(D′))` as gradient sums, derived
    /// from the stored sum via the differing-record identity:
    /// bounded: `Σ(D′) = Σ(D) − ḡ(x̂₁) + ḡ(x̂₂)`; unbounded:
    /// `Σ(D′) = Σ(D) − ḡ(x̂₁)`.
    pub fn hypothesis_centers(
        &self,
        trained_on_d: bool,
        mode: NeighborMode,
    ) -> (Vec<f64>, Vec<f64>) {
        let other: Vec<f64> = match (mode, &self.grad_x2) {
            (NeighborMode::Bounded, Some(g2)) => {
                if trained_on_d {
                    // Σ(D′) = Σ(D) − g1 + g2
                    self.clean_sum
                        .iter()
                        .zip(&self.grad_x1)
                        .zip(g2)
                        .map(|((s, g1), g2)| s - g1 + g2)
                        .collect()
                } else {
                    // Σ(D) = Σ(D′) + g1 − g2
                    self.clean_sum
                        .iter()
                        .zip(&self.grad_x1)
                        .zip(g2)
                        .map(|((s, g1), g2)| s + g1 - g2)
                        .collect()
                }
            }
            (NeighborMode::Unbounded, None) => {
                if trained_on_d {
                    // Σ(D′) = Σ(D) − g1
                    self.clean_sum
                        .iter()
                        .zip(&self.grad_x1)
                        .map(|(s, g1)| s - g1)
                        .collect()
                } else {
                    // Σ(D) = Σ(D′) + g1
                    self.clean_sum
                        .iter()
                        .zip(&self.grad_x1)
                        .map(|(s, g1)| s + g1)
                        .collect()
                }
            }
            _ => panic!("StepRecord: mode and grad_x2 presence disagree"),
        };
        if trained_on_d {
            (self.clean_sum.clone(), other)
        } else {
            (other, self.clean_sum.clone())
        }
    }
}

/// A complete training transcript plus the run's ground truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Transcript {
    /// One record per training step, in order.
    pub steps: Vec<StepRecord>,
    /// Ground truth of the challenge: `true` if D was trained (b = 1).
    pub trained_on_d: bool,
    /// The run configuration.
    pub config: DpsgdConfig,
}

impl Transcript {
    /// Serialise to pretty JSON at `path` — the archival format the
    /// `dpaudit` CLI audits.
    ///
    /// # Errors
    /// I/O or serialisation failures.
    pub fn to_json_file(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Load a transcript previously written by
    /// [`Transcript::to_json_file`].
    ///
    /// # Errors
    /// I/O or deserialisation failures.
    pub fn from_json_file(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// The per-step estimated local sensitivities, in step order
    /// (the series plotted by the paper's Figures 4 and 5).
    pub fn local_sensitivities(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.local_sensitivity).collect()
    }

    /// The per-step σ values.
    pub fn sigmas(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.sigma).collect()
    }

    /// The per-step mean training losses.
    pub fn losses(&self) -> Vec<f64> {
        self.steps.iter().map(|s| s.mean_loss).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(mode: NeighborMode) -> StepRecord {
        StepRecord {
            step: 0,
            noisy_sum: vec![0.0; 3],
            clean_sum: vec![10.0, 20.0, 30.0],
            grad_x1: vec![1.0, 2.0, 3.0],
            grad_x2: match mode {
                NeighborMode::Bounded => Some(vec![0.5, 0.5, 0.5]),
                NeighborMode::Unbounded => None,
            },
            local_sensitivity: 1.0,
            clip_bound: 3.0,
            sensitivity_used: 1.0,
            sigma: 1.0,
            mean_loss: 0.0,
        }
    }

    #[test]
    fn centers_bounded_trained_on_d() {
        let r = record(NeighborMode::Bounded);
        let (cd, cdp) = r.hypothesis_centers(true, NeighborMode::Bounded);
        assert_eq!(cd, vec![10.0, 20.0, 30.0]);
        assert_eq!(cdp, vec![9.5, 18.5, 27.5]);
    }

    #[test]
    fn centers_bounded_trained_on_d_prime() {
        let r = record(NeighborMode::Bounded);
        let (cd, cdp) = r.hypothesis_centers(false, NeighborMode::Bounded);
        assert_eq!(cdp, vec![10.0, 20.0, 30.0]);
        assert_eq!(cd, vec![10.5, 21.5, 32.5]);
    }

    #[test]
    fn centers_unbounded_both_directions() {
        let r = record(NeighborMode::Unbounded);
        let (cd, cdp) = r.hypothesis_centers(true, NeighborMode::Unbounded);
        assert_eq!(cd, vec![10.0, 20.0, 30.0]);
        assert_eq!(cdp, vec![9.0, 18.0, 27.0]);
        let (cd2, cdp2) = r.hypothesis_centers(false, NeighborMode::Unbounded);
        assert_eq!(cdp2, vec![10.0, 20.0, 30.0]);
        assert_eq!(cd2, vec![11.0, 22.0, 33.0]);
    }

    #[test]
    fn centers_round_trip_consistency() {
        // The D-center derived when trained on D′ plus the identity must
        // reproduce the D′-center, i.e. the two derivations are inverses.
        let r = record(NeighborMode::Bounded);
        let (cd_t, cdp_t) = r.hypothesis_centers(true, NeighborMode::Bounded);
        // Pretend the clean sum had been cdp_t (trained on D′):
        let mut r2 = r.clone();
        r2.clean_sum = cdp_t;
        let (cd_f, _) = r2.hypothesis_centers(false, NeighborMode::Bounded);
        assert_eq!(cd_f, cd_t);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn mode_mismatch_panics() {
        record(NeighborMode::Bounded).hypothesis_centers(true, NeighborMode::Unbounded);
    }

    #[test]
    fn transcript_json_round_trip() {
        let t = Transcript {
            steps: vec![record(NeighborMode::Bounded), record(NeighborMode::Bounded)],
            trained_on_d: false,
            config: crate::config::DpsgdConfig::new(
                3.0,
                0.005,
                2,
                NeighborMode::Bounded,
                1.5,
                crate::config::SensitivityScaling::Local,
            ),
        };
        let dir = std::env::temp_dir().join("dpaudit-transcript-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.json");
        t.to_json_file(&path).unwrap();
        let back = Transcript::from_json_file(&path).unwrap();
        assert_eq!(back.steps.len(), 2);
        assert_eq!(back.trained_on_d, t.trained_on_d);
        assert_eq!(back.steps[0].clean_sum, t.steps[0].clean_sum);
        assert_eq!(back.config, t.config);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transcript_load_rejects_garbage() {
        let dir = std::env::temp_dir().join("dpaudit-transcript-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        std::fs::write(&path, "not json at all").unwrap();
        assert!(Transcript::from_json_file(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn transcript_series_accessors() {
        let t = Transcript {
            steps: vec![record(NeighborMode::Unbounded)],
            trained_on_d: true,
            config: crate::config::DpsgdConfig::new(
                3.0,
                0.005,
                1,
                NeighborMode::Unbounded,
                1.0,
                crate::config::SensitivityScaling::Global,
            ),
        };
        assert_eq!(t.local_sensitivities(), vec![1.0]);
        assert_eq!(t.sigmas(), vec![1.0]);
        assert_eq!(t.losses(), vec![0.0]);
    }
}

//! Mini-batch DPSGD with Poisson subsampling — the production-style trainer.
//!
//! The paper's *audit* experiments use full-batch gradient descent because
//! that matches the DI adversary's side knowledge (§6.1); real deployments
//! use Poisson-subsampled mini-batches, whose privacy amplification the RDP
//! accountant of `dpaudit-dp` tracks (`add_subsampled_gaussian_step`). This
//! module provides that trainer: per step every record enters the batch
//! independently with probability `q`, per-example gradients are clipped and
//! summed, Gaussian noise scaled to the clip bound is added, and the update
//! divides by the expected batch size `q·n`.

use dpaudit_datasets::Dataset;
use dpaudit_dp::RdpAccountant;
use dpaudit_math::{axpy, GaussianSampler};
use dpaudit_nn::Sequential;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::clip::ClippingStrategy;

/// Configuration of a mini-batch DPSGD run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinibatchConfig {
    /// Per-example clipping strategy.
    pub clipping: ClippingStrategy,
    /// Learning rate applied to the mean perturbed gradient.
    pub learning_rate: f64,
    /// Number of subsampled steps.
    pub steps: usize,
    /// Poisson inclusion probability `q` per record and step.
    pub sampling_rate: f64,
    /// Noise multiplier `z = σ/C` (unbounded add/remove sensitivity of the
    /// clipped-gradient sum).
    pub noise_multiplier: f64,
}

impl MinibatchConfig {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics on invalid rates, steps or noise multiplier.
    pub fn new(
        clipping: ClippingStrategy,
        learning_rate: f64,
        steps: usize,
        sampling_rate: f64,
        noise_multiplier: f64,
    ) -> Self {
        clipping.total_bound(); // validate
        assert!(
            learning_rate > 0.0,
            "MinibatchConfig: learning rate must be positive"
        );
        assert!(steps > 0, "MinibatchConfig: steps must be positive");
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "MinibatchConfig: sampling rate must be in (0, 1]"
        );
        assert!(
            noise_multiplier.is_finite() && noise_multiplier > 0.0,
            "MinibatchConfig: noise multiplier must be positive"
        );
        Self {
            clipping,
            learning_rate,
            steps,
            sampling_rate,
            noise_multiplier,
        }
    }
}

/// Result of a mini-batch run: the accountant holding the composed RDP and
/// per-step batch statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinibatchOutcome {
    /// Accountant after all steps (query with `.epsilon(delta)`).
    pub accountant: RdpAccountant,
    /// Realised batch sizes per step.
    pub batch_sizes: Vec<usize>,
    /// Mean training loss per step over the sampled batch (NaN-free; steps
    /// with an empty batch record the previous value).
    pub losses: Vec<f64>,
}

impl MinibatchOutcome {
    /// The (ε, δ)-DP guarantee realised by the run.
    pub fn epsilon(&self, delta: f64) -> f64 {
        self.accountant.epsilon(delta).0
    }
}

/// Train with Poisson-subsampled DPSGD.
///
/// # Panics
/// Panics on an empty dataset.
pub fn train_minibatch_dpsgd<R: Rng + ?Sized>(
    model: &mut Sequential,
    data: &Dataset,
    cfg: &MinibatchConfig,
    rng: &mut R,
) -> MinibatchOutcome {
    assert!(!data.is_empty(), "train_minibatch_dpsgd: empty dataset");
    let dim = model.param_count();
    let layout = model.param_layout();
    let bound = cfg.clipping.total_bound();
    let sigma = cfg.noise_multiplier * bound;
    let expected_batch = (cfg.sampling_rate * data.len() as f64).max(1.0);
    let mut gauss = GaussianSampler::new();
    let mut accountant = RdpAccountant::new();
    let mut batch_sizes = Vec::with_capacity(cfg.steps);
    let mut losses = Vec::with_capacity(cfg.steps);
    let mut last_loss = f64::NAN;

    for _ in 0..cfg.steps {
        // Poisson sampling: each record independently with probability q.
        let batch: Vec<usize> = (0..data.len())
            .filter(|_| rng.gen::<f64>() < cfg.sampling_rate)
            .collect();
        batch_sizes.push(batch.len());

        if !batch.is_empty() {
            let batch_xs: Vec<_> = batch.iter().map(|&i| data.xs[i].clone()).collect();
            model.update_norm_stats(&batch_xs);
        }

        let mut sum = vec![0.0; dim];
        let mut loss_total = 0.0;
        for &i in &batch {
            let (loss, mut g) = model.per_example_grad(&data.xs[i], data.ys[i]);
            cfg.clipping.clip(&mut g, &layout);
            loss_total += loss;
            axpy(1.0, &g, &mut sum);
        }
        if !batch.is_empty() {
            last_loss = loss_total / batch.len() as f64;
        }
        losses.push(last_loss);

        for v in &mut sum {
            *v += gauss.sample(rng, 0.0, sigma);
        }
        let update: Vec<f64> = sum.iter().map(|v| v / expected_batch).collect();
        model.gradient_step(&update, cfg.learning_rate);

        accountant.add_subsampled_gaussian_step(cfg.sampling_rate, cfg.noise_multiplier);
    }

    MinibatchOutcome {
        accountant,
        batch_sizes,
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_datasets::generate_purchase;
    use dpaudit_math::seeded_rng;
    use dpaudit_nn::{Dense, Layer};
    use dpaudit_tensor::Tensor;

    fn tiny_model(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 6, 8)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 8, 3)),
        ])
    }

    fn tiny_data(n: usize) -> Dataset {
        let mut d = Dataset::empty();
        for i in 0..n {
            let x: Vec<f64> = (0..6).map(|j| ((i * 7 + j * 5) % 9) as f64 / 9.0).collect();
            d.push(Tensor::from_vec(&[6], x), i % 3);
        }
        d
    }

    fn cfg(q: f64, steps: usize, z: f64) -> MinibatchConfig {
        MinibatchConfig::new(ClippingStrategy::Flat(1.0), 0.2, steps, q, z)
    }

    #[test]
    fn batch_sizes_track_sampling_rate() {
        let mut model = tiny_model(1);
        let data = tiny_data(200);
        let out = train_minibatch_dpsgd(&mut model, &data, &cfg(0.25, 40, 5.0), &mut seeded_rng(2));
        let mean = out.batch_sizes.iter().sum::<usize>() as f64 / out.batch_sizes.len() as f64;
        assert!((mean - 50.0).abs() < 10.0, "mean batch size {mean}");
    }

    #[test]
    fn accountant_reports_finite_epsilon() {
        let mut model = tiny_model(3);
        let data = tiny_data(50);
        let out = train_minibatch_dpsgd(&mut model, &data, &cfg(0.2, 30, 1.5), &mut seeded_rng(4));
        let eps = out.epsilon(1e-5);
        assert!(eps.is_finite() && eps > 0.0);
        // Privacy amplification: far below the full-batch cost at z = 1.5.
        let mut full = RdpAccountant::new();
        full.add_gaussian_steps(1.5, 30);
        assert!(eps < full.epsilon(1e-5).0 / 2.0);
    }

    #[test]
    fn epsilon_grows_with_steps() {
        let run = |steps: usize| {
            let mut model = tiny_model(5);
            let data = tiny_data(50);
            train_minibatch_dpsgd(&mut model, &data, &cfg(0.2, steps, 1.5), &mut seeded_rng(6))
                .epsilon(1e-5)
        };
        assert!(run(10) < run(40));
    }

    #[test]
    fn low_noise_training_reduces_loss() {
        let mut model = tiny_model(7);
        let data = tiny_data(60);
        let initial = model.mean_loss(&data.xs, &data.ys);
        // Generous budget: tiny noise, high sampling rate, many steps.
        let c = MinibatchConfig::new(ClippingStrategy::Flat(5.0), 0.3, 120, 0.8, 0.01);
        train_minibatch_dpsgd(&mut model, &data, &c, &mut seeded_rng(8));
        let fin = model.mean_loss(&data.xs, &data.ys);
        assert!(fin < initial, "loss {initial} -> {fin}");
    }

    #[test]
    fn q_one_behaves_like_full_batch_accounting() {
        let mut model = tiny_model(9);
        let data = tiny_data(20);
        let out = train_minibatch_dpsgd(&mut model, &data, &cfg(1.0, 5, 2.0), &mut seeded_rng(10));
        assert!(out.batch_sizes.iter().all(|&b| b == 20));
        let mut full = RdpAccountant::new();
        full.add_gaussian_steps(2.0, 5);
        assert!((out.epsilon(1e-5) - full.epsilon(1e-5).0).abs() < 1e-9);
    }

    #[test]
    fn purchase_smoke() {
        let mut rng = seeded_rng(11);
        let data = generate_purchase(&mut rng, 40);
        let mut model = dpaudit_nn::purchase_mlp(&mut rng);
        let c = MinibatchConfig::new(ClippingStrategy::Flat(3.0), 0.005, 3, 0.3, 1.1);
        let out = train_minibatch_dpsgd(&mut model, &data, &c, &mut rng);
        assert_eq!(out.batch_sizes.len(), 3);
        assert!(out.epsilon(1e-3) > 0.0);
    }

    #[test]
    #[should_panic(expected = "sampling rate must be in")]
    fn zero_rate_rejected() {
        cfg(0.0, 5, 1.0);
    }
}

//! Per-example gradient clipping: flat, per-layer, and adaptive.

use dpaudit_math::l2_norm;
use dpaudit_nn::Sequential;
use dpaudit_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Scale `grad` in place so its ℓ2 norm is at most `clip_norm`
/// (`g ← g · min(1, C/‖g‖)`), returning the pre-clip norm.
///
/// # Panics
/// Panics for a non-positive clip norm.
pub fn clip_to_norm(grad: &mut [f64], clip_norm: f64) -> f64 {
    assert!(
        clip_norm.is_finite() && clip_norm > 0.0,
        "clip_to_norm: clip norm must be positive, got {clip_norm}"
    );
    let norm = l2_norm(grad);
    if norm > clip_norm {
        let scale = clip_norm / norm;
        for g in grad {
            *g *= scale;
        }
    }
    norm
}

/// The clipped per-example gradient `ḡ(x) = clip_C(∇ℓ(θ, x))` together with
/// the example's loss.
pub fn clipped_gradient(
    model: &Sequential,
    x: &Tensor,
    label: usize,
    clip_norm: f64,
) -> (f64, Vec<f64>) {
    let (loss, mut grad) = model.per_example_grad(x, label);
    clip_to_norm(&mut grad, clip_norm);
    (loss, grad)
}

/// How per-example gradients are clipped before aggregation.
///
/// The paper uses a single flat norm C = 3 and notes (§7, citing McMahan et
/// al. and Thakkar et al.) that per-layer and adaptive clipping may improve
/// the utility/tightness trade-off; both are implemented here as extensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClippingStrategy {
    /// Clip the whole flat gradient to ℓ2 norm `C`.
    Flat(f64),
    /// Clip each parameterised layer's gradient segment to its own norm.
    /// The segment boundaries come from
    /// [`dpaudit_nn::Sequential::param_layout`]; the whole-gradient norm is
    /// then bounded by `√(Σ Cₗ²)`.
    PerLayer(Vec<f64>),
}

impl ClippingStrategy {
    /// The bound on the ℓ2 norm of one clipped per-example gradient — the
    /// `C` entering the global-sensitivity formulas (C unbounded, 2C
    /// bounded).
    ///
    /// # Panics
    /// Panics on non-positive norms or an empty per-layer list.
    pub fn total_bound(&self) -> f64 {
        match self {
            ClippingStrategy::Flat(c) => {
                assert!(
                    c.is_finite() && *c > 0.0,
                    "ClippingStrategy: C must be positive"
                );
                *c
            }
            ClippingStrategy::PerLayer(cs) => {
                assert!(!cs.is_empty(), "ClippingStrategy: empty per-layer norms");
                assert!(
                    cs.iter().all(|c| c.is_finite() && *c > 0.0),
                    "ClippingStrategy: all per-layer norms must be positive"
                );
                cs.iter().map(|c| c * c).sum::<f64>().sqrt()
            }
        }
    }

    /// Clip `grad` in place. `layout` gives the per-layer segment lengths
    /// (only used by [`ClippingStrategy::PerLayer`]). Returns the pre-clip
    /// whole-gradient norm.
    ///
    /// # Panics
    /// Panics when the per-layer norm count or segment lengths do not match
    /// the gradient.
    pub fn clip(&self, grad: &mut [f64], layout: &[usize]) -> f64 {
        match self {
            ClippingStrategy::Flat(c) => clip_to_norm(grad, *c),
            ClippingStrategy::PerLayer(cs) => {
                assert_eq!(
                    cs.len(),
                    layout.len(),
                    "ClippingStrategy::PerLayer: {} norms for {} layers",
                    cs.len(),
                    layout.len()
                );
                assert_eq!(
                    layout.iter().sum::<usize>(),
                    grad.len(),
                    "ClippingStrategy::PerLayer: layout does not cover the gradient"
                );
                let pre = l2_norm(grad);
                let mut off = 0;
                for (&c, &len) in cs.iter().zip(layout) {
                    clip_to_norm(&mut grad[off..off + len], c);
                    off += len;
                }
                pre
            }
        }
    }
}

/// Adaptive clipping in the style of Thakkar–Andrew–McMahan: track the
/// fraction of per-example gradients that were *not* clipped and steer `C`
/// geometrically toward a target quantile of the norm distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveClipConfig {
    /// Target fraction of unclipped gradients (e.g. 0.5 = median norm).
    pub target_quantile: f64,
    /// Geometric learning rate for the `C` update.
    pub learning_rate: f64,
}

impl AdaptiveClipConfig {
    /// Construct with validation.
    ///
    /// # Panics
    /// Panics for a quantile outside `(0, 1)` or a non-positive rate.
    pub fn new(target_quantile: f64, learning_rate: f64) -> Self {
        assert!(
            target_quantile > 0.0 && target_quantile < 1.0,
            "AdaptiveClipConfig: quantile must be in (0, 1)"
        );
        assert!(
            learning_rate > 0.0,
            "AdaptiveClipConfig: learning rate must be positive"
        );
        Self {
            target_quantile,
            learning_rate,
        }
    }

    /// One update: `C ← C·exp(−η·(b̄ − γ))` where `b̄` is the observed
    /// unclipped fraction and γ the target. An over-clipping step (b̄ < γ)
    /// grows C; an under-clipping one shrinks it.
    ///
    /// # Panics
    /// Panics for a fraction outside `[0, 1]`.
    pub fn updated_norm(&self, current: f64, unclipped_fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&unclipped_fraction),
            "updated_norm: fraction must be in [0, 1]"
        );
        current * (-self.learning_rate * (unclipped_fraction - self.target_quantile)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;
    use dpaudit_nn::purchase_mlp;

    #[test]
    fn flat_strategy_matches_clip_to_norm() {
        let strat = ClippingStrategy::Flat(1.0);
        let mut a = vec![3.0, 4.0];
        let mut b = a.clone();
        let pre = strat.clip(&mut a, &[2]);
        clip_to_norm(&mut b, 1.0);
        assert_eq!(a, b);
        assert!((pre - 5.0).abs() < 1e-12);
        assert_eq!(strat.total_bound(), 1.0);
    }

    #[test]
    fn per_layer_clips_each_segment() {
        let strat = ClippingStrategy::PerLayer(vec![1.0, 2.0]);
        // Segment 1 norm 5 → scaled to 1; segment 2 norm 1 → untouched.
        let mut g = vec![3.0, 4.0, 1.0, 0.0];
        strat.clip(&mut g, &[2, 2]);
        assert!((l2_norm(&g[0..2]) - 1.0).abs() < 1e-12);
        assert_eq!(&g[2..4], &[1.0, 0.0]);
        // Total bound is the root-sum-square of the per-layer norms.
        assert!((strat.total_bound() - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn per_layer_whole_norm_respects_total_bound() {
        let strat = ClippingStrategy::PerLayer(vec![0.5, 1.5, 1.0]);
        let mut g: Vec<f64> = (0..9).map(|i| (i as f64 + 1.0) * 2.0).collect();
        strat.clip(&mut g, &[3, 3, 3]);
        assert!(l2_norm(&g) <= strat.total_bound() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "norms for")]
    fn per_layer_count_mismatch_panics() {
        ClippingStrategy::PerLayer(vec![1.0]).clip(&mut [0.0; 4], &[2, 2]);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn per_layer_layout_mismatch_panics() {
        ClippingStrategy::PerLayer(vec![1.0, 1.0]).clip(&mut [0.0; 5], &[2, 2]);
    }

    #[test]
    fn adaptive_update_direction() {
        let a = AdaptiveClipConfig::new(0.5, 0.2);
        // Everything clipped (fraction 0) → C grows.
        assert!(a.updated_norm(3.0, 0.0) > 3.0);
        // Nothing clipped (fraction 1) → C shrinks.
        assert!(a.updated_norm(3.0, 1.0) < 3.0);
        // On target → unchanged.
        assert!((a.updated_norm(3.0, 0.5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn adaptive_converges_to_quantile_on_static_norms() {
        // Norms fixed at 2.0; target: half unclipped. C should converge to
        // ~2.0 where the unclipped fraction crosses the target.
        let a = AdaptiveClipConfig::new(0.5, 0.3);
        let norms = [1.0, 1.5, 2.0, 2.5, 3.0];
        let mut c = 10.0;
        for _ in 0..200 {
            let unclipped = norms.iter().filter(|&&n| n <= c).count() as f64 / norms.len() as f64;
            c = a.updated_norm(c, unclipped);
        }
        assert!(
            (1.5..=2.6).contains(&c),
            "C did not converge near the median: {c}"
        );
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn adaptive_bad_quantile_rejected() {
        AdaptiveClipConfig::new(1.0, 0.1);
    }

    #[test]
    fn short_vectors_untouched() {
        let mut g = vec![0.3, 0.4];
        let pre = clip_to_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
        assert!((pre - 0.5).abs() < 1e-12);
    }

    #[test]
    fn long_vectors_scaled_to_boundary() {
        let mut g = vec![3.0, 4.0];
        let pre = clip_to_norm(&mut g, 1.0);
        assert!((pre - 5.0).abs() < 1e-12);
        assert!((l2_norm(&g) - 1.0).abs() < 1e-12);
        // Direction preserved.
        assert!((g[1] / g[0] - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn exactly_at_boundary_untouched() {
        let mut g = vec![1.0, 0.0];
        clip_to_norm(&mut g, 1.0);
        assert_eq!(g, vec![1.0, 0.0]);
    }

    #[test]
    fn zero_gradient_stays_zero() {
        let mut g = vec![0.0; 5];
        clip_to_norm(&mut g, 2.0);
        assert!(g.iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "clip norm must be positive")]
    fn bad_clip_norm_panics() {
        clip_to_norm(&mut [1.0], 0.0);
    }

    #[test]
    fn clipped_gradient_respects_bound() {
        let model = purchase_mlp(&mut seeded_rng(1));
        let x = Tensor::full(&[600], 1.0);
        let (loss, g) = clipped_gradient(&model, &x, 3, 0.1);
        assert!(loss.is_finite());
        assert!(l2_norm(&g) <= 0.1 + 1e-9);
    }
}

//! The batched DPSGD clip loop and its intra-trial parallelism knob.
//!
//! [`clip_loop`] is the per-step hot path of every audit trial: per-example
//! gradients, clipping, and the clipped-gradient sum. It walks the dataset
//! in fixed chunks of [`CLIP_CHUNK`] examples, computes each chunk with one
//! batched forward/backward pass, and folds the per-chunk partial sums in
//! chunk-index order. Because the chunking is a constant of the data (never
//! of the worker count) and the fold order is fixed, the result is
//! bit-identical whether chunks run sequentially or on a thread pool —
//! the same invariant the runtime executor guarantees across trials.
//!
//! The thread count is a process-wide knob ([`set_batch_threads`]) rather
//! than a per-call argument because the trainer sits several layers below
//! the code that knows the CLI configuration, and the knob cannot affect
//! any result — only how fast it arrives.

use dpaudit_math::axpy;
use dpaudit_nn::{Sequential, SequentialF32};
use dpaudit_obs as obs;
use dpaudit_tensor::{Backend, Tensor};
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::clip::ClippingStrategy;
use crate::config::ComputeMode;

/// Examples per clip-loop chunk. A constant of the computation, not of the
/// thread count: chunk boundaries define the fixed-order reduction that
/// makes the clipped-gradient sum independent of parallelism. 16 examples
/// keeps a chunk's per-example gradient buffer around 11 MB for the largest
/// reference model (purchase MLP, ~90k parameters).
pub const CLIP_CHUNK: usize = 16;

/// Worker threads for the clip loop inside one trial (process-wide).
/// 1 = sequential (default), 0 = machine parallelism.
static BATCH_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the intra-trial clip-loop worker count: 1 = sequential, 0 = machine
/// parallelism. Safe to call at any time — the value changes throughput
/// only, never results.
pub fn set_batch_threads(n: usize) {
    BATCH_THREADS.store(n, Ordering::Relaxed);
}

/// The configured intra-trial worker count (0 = machine parallelism).
pub fn batch_threads() -> usize {
    BATCH_THREADS.load(Ordering::Relaxed)
}

/// The resolved intra-trial worker count (with 0 mapped to the machine's
/// available parallelism).
pub fn effective_batch_threads() -> usize {
    match batch_threads() {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// A thread pool sized by [`set_batch_threads`], or `None` when the knob
/// resolves to sequential execution. Build once per training run and pass
/// to every [`clip_loop`] call.
pub fn batch_pool() -> Option<ThreadPool> {
    let n = effective_batch_threads();
    (n > 1).then(|| {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("clip-loop thread pool")
    })
}

/// Aggregates of one clip-loop pass over a dataset.
#[derive(Debug, Clone)]
pub struct ClipLoopOutput {
    /// Sum of the clipped per-example gradients (flat parameter layout).
    pub clean_sum: Vec<f64>,
    /// Sum of the per-example losses.
    pub loss_total: f64,
    /// Examples whose pre-clip norm was already within the bound.
    pub unclipped: usize,
}

/// One pass of the DPSGD clip loop: per-example gradients over `(xs, ys)`
/// via the batched pipeline, clipped by `clipping` over `layout`, summed in
/// fixed chunk order. With `pool`, chunks run in parallel; the output is
/// bit-identical either way (see the module docs).
pub fn clip_loop(
    model: &Sequential,
    xs: &[Tensor],
    ys: &[usize],
    clipping: &ClippingStrategy,
    layout: &[usize],
    pool: Option<&ThreadPool>,
) -> ClipLoopOutput {
    clip_loop_on(model, xs, ys, clipping, layout, pool, Backend::native())
}

/// [`clip_loop`] with the per-example gradient gemms routed through a
/// [`Backend`] handle (resolved once per training run, never per chunk).
/// On [`Backend::native`] the two are bit-identical; other backends are
/// tolerance-equivalent only.
pub fn clip_loop_on(
    model: &Sequential,
    xs: &[Tensor],
    ys: &[usize],
    clipping: &ClippingStrategy,
    layout: &[usize],
    pool: Option<&ThreadPool>,
    backend: Backend,
) -> ClipLoopOutput {
    let dim = model.param_count();
    let bound = clipping.total_bound();
    let ranges = chunk_ranges(xs.len());
    let run_chunk = |(start, end): (usize, usize)| {
        let chunk_span = obs::span(obs::names::CLIP_CHUNK_SPAN);
        let (losses, mut grads) =
            model.per_example_grads_on(backend, &xs[start..end], &ys[start..end]);
        let mut clean_sum = vec![0.0; dim];
        let mut unclipped = 0usize;
        for row in grads.data_mut().chunks_exact_mut(dim) {
            let pre_norm = clipping.clip(row, layout);
            if pre_norm <= bound {
                unclipped += 1;
            }
            axpy(1.0, row, &mut clean_sum);
        }
        let loss_total: f64 = losses.iter().sum();
        drop(chunk_span);
        ClipLoopOutput {
            clean_sum,
            loss_total,
            unclipped,
        }
    };
    fold_partials(run_partials(ranges, run_chunk, pool), dim)
}

/// One pass of the clip loop in the requested [`ComputeMode`].
///
/// [`ComputeMode::F64`] delegates to [`clip_loop`] (the bit-reproducible
/// oracle). [`ComputeMode::F32`] narrows the model once per call
/// ([`SequentialF32::from_model`]), computes each chunk's per-example
/// gradients in single precision, and widens each f32 value to f64 on the
/// fly as it flows into the norm and the chunk-ordered sum — so the norm,
/// the clip scale, and the sum all accumulate in double precision over
/// f32-valued inputs, without materialising an f64 copy of the row. The
/// norm uses a fixed eight-lane partial-sum reduction (a single running sum
/// is a serial add chain whose latency dominates the loop at ~10⁵
/// parameters); everything downstream of the per-example gradients
/// is deterministic with a fixed chunk and fold order, so f32 results are
/// still bit-identical across thread counts, just not to the f64 oracle.
///
/// The `backend` handle routes every per-example gradient gemm (both
/// precisions) through the selected compute backend; it is resolved once
/// per training run, so no dynamic dispatch sits inside the chunk loop.
#[allow(clippy::too_many_arguments)]
pub fn clip_loop_mode(
    model: &Sequential,
    xs: &[Tensor],
    ys: &[usize],
    clipping: &ClippingStrategy,
    layout: &[usize],
    pool: Option<&ThreadPool>,
    compute: ComputeMode,
    backend: Backend,
) -> ClipLoopOutput {
    if compute == ComputeMode::F64 {
        return clip_loop_on(model, xs, ys, clipping, layout, pool, backend);
    }
    let dim = model.param_count();
    let bound = clipping.total_bound();
    let shadow = SequentialF32::from_model(model);
    let ranges = chunk_ranges(xs.len());
    let run_chunk = |(start, end): (usize, usize)| {
        let chunk_span = obs::span(obs::names::CLIP_CHUNK_SPAN);
        let (losses, grads) =
            shadow.per_example_grads_on(backend, &xs[start..end], &ys[start..end]);
        let mut clean_sum = vec![0.0; dim];
        let mut unclipped = 0usize;
        for row in grads.chunks_exact(dim) {
            let pre_norm = clip_add_widened(clipping, row, layout, &mut clean_sum);
            if pre_norm <= bound {
                unclipped += 1;
            }
        }
        let loss_total: f64 = losses.iter().sum();
        drop(chunk_span);
        ClipLoopOutput {
            clean_sum,
            loss_total,
            unclipped,
        }
    };
    fold_partials(run_partials(ranges, run_chunk, pool), dim)
}

/// Clip one f32 gradient row against `clipping` and add it into the f64
/// `clean_sum`, widening each value on the fly — the f32-mode fusion of
/// [`ClippingStrategy::clip`] + `axpy`. Returns the pre-clip norm.
///
/// The semantics match the f64 path (`g ← g · min(1, C/‖g‖)` per flat or
/// per-layer segment, pre-clip *total* norm returned); only the reduction
/// order of the norm differs, which the f32 mode's tolerance contract
/// permits.
fn clip_add_widened(
    clipping: &ClippingStrategy,
    row: &[f32],
    layout: &[usize],
    clean_sum: &mut [f64],
) -> f64 {
    let factor = |norm: f64, c: f64| if norm > c { c / norm } else { 1.0 };
    match clipping {
        ClippingStrategy::Flat(c) => {
            let norm = l2_norm_widened(row);
            axpy_widened(factor(norm, *c), row, clean_sum);
            norm
        }
        ClippingStrategy::PerLayer(cs) => {
            assert_eq!(
                cs.len(),
                layout.len(),
                "clip_add_widened: {} norms for {} layers",
                cs.len(),
                layout.len()
            );
            assert_eq!(
                layout.iter().sum::<usize>(),
                row.len(),
                "clip_add_widened: layout does not cover the gradient"
            );
            let pre = l2_norm_widened(row);
            let mut off = 0;
            for (&c, &len) in cs.iter().zip(layout) {
                let seg = &row[off..off + len];
                axpy_widened(
                    factor(l2_norm_widened(seg), c),
                    seg,
                    &mut clean_sum[off..off + len],
                );
                off += len;
            }
            pre
        }
    }
}

/// ‖row‖ with each f32 widened to f64 as it is read, accumulated across
/// eight fixed partial sums. A single running sum is a serial add chain —
/// at ~10⁵ parameters its latency dominates the whole f32 clip loop — while
/// eight independent lanes vectorise. The lane count is a constant of the
/// algorithm, so the result does not depend on the thread count.
fn l2_norm_widened(row: &[f32]) -> f64 {
    const LANES: usize = 8;
    let mut acc = [0.0f64; LANES];
    let mut chunks = row.chunks_exact(LANES);
    for chunk in &mut chunks {
        for (a, &g) in acc.iter_mut().zip(chunk) {
            let w = f64::from(g);
            *a += w * w;
        }
    }
    let mut tail = 0.0;
    for &g in chunks.remainder() {
        let w = f64::from(g);
        tail += w * w;
    }
    (acc.iter().sum::<f64>() + tail).sqrt()
}

/// `sum[i] += factor · f64::from(row[i])` — the widening fused scale-add.
fn axpy_widened(factor: f64, row: &[f32], sum: &mut [f64]) {
    for (s, &g) in sum.iter_mut().zip(row) {
        *s += factor * f64::from(g);
    }
}

/// The fixed chunk decomposition of a dataset of `n` examples.
fn chunk_ranges(n: usize) -> Vec<(usize, usize)> {
    (0..n)
        .step_by(CLIP_CHUNK)
        .map(|start| (start, usize::min(start + CLIP_CHUNK, n)))
        .collect()
}

/// Run the per-chunk closure over every range, on the pool when given.
fn run_partials<F>(
    ranges: Vec<(usize, usize)>,
    run_chunk: F,
    pool: Option<&ThreadPool>,
) -> Vec<ClipLoopOutput>
where
    F: Fn((usize, usize)) -> ClipLoopOutput + Sync + Send,
{
    match pool {
        Some(pool) if ranges.len() > 1 => {
            pool.install(|| ranges.into_par_iter().map(&run_chunk).collect())
        }
        _ => ranges.into_iter().map(run_chunk).collect(),
    }
}

/// Fold the partials in chunk-index order — the fixed-order reduction that
/// keeps the sum independent of scheduling.
fn fold_partials(partials: Vec<ClipLoopOutput>, dim: usize) -> ClipLoopOutput {
    let mut out = ClipLoopOutput {
        clean_sum: vec![0.0; dim],
        loss_total: 0.0,
        unclipped: 0,
    };
    for p in partials {
        axpy(1.0, &p.clean_sum, &mut out.clean_sum);
        out.loss_total += p.loss_total;
        out.unclipped += p.unclipped;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;
    use dpaudit_nn::{Dense, Layer};

    fn setup(n: usize) -> (Sequential, Vec<Tensor>, Vec<usize>) {
        let mut rng = seeded_rng(7);
        let model = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 5, 4)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 4, 3)),
        ]);
        let xs: Vec<Tensor> = (0..n)
            .map(|i| {
                Tensor::from_vec(
                    &[5],
                    (0..5)
                        .map(|j| ((i * 7 + j * 3) % 13) as f64 / 13.0)
                        .collect(),
                )
            })
            .collect();
        let ys: Vec<usize> = (0..n).map(|i| i % 3).collect();
        (model, xs, ys)
    }

    #[test]
    fn knob_round_trips_and_resolves_zero() {
        let before = batch_threads();
        set_batch_threads(3);
        assert_eq!(batch_threads(), 3);
        assert_eq!(effective_batch_threads(), 3);
        set_batch_threads(0);
        assert!(effective_batch_threads() >= 1);
        set_batch_threads(before);
    }

    #[test]
    fn clip_loop_matches_scalar_per_example_loop_bitwise() {
        // More examples than one chunk, with a ragged tail.
        let (model, xs, ys) = setup(CLIP_CHUNK * 2 + 5);
        let clipping = ClippingStrategy::Flat(0.7);
        let layout = model.param_layout();
        let out = clip_loop(&model, &xs, &ys, &clipping, &layout, None);

        // Chunked scalar oracle with the same fold order.
        let bound = clipping.total_bound();
        let mut expect = vec![0.0; model.param_count()];
        let mut loss_total = 0.0;
        let mut unclipped = 0;
        for chunk in xs.chunks(CLIP_CHUNK).zip(ys.chunks(CLIP_CHUNK)) {
            let mut partial = vec![0.0; model.param_count()];
            for (x, &y) in chunk.0.iter().zip(chunk.1) {
                let (loss, mut g) = model.per_example_grad_scalar(x, y);
                let pre_norm = clipping.clip(&mut g, &layout);
                if pre_norm <= bound {
                    unclipped += 1;
                }
                loss_total += loss;
                axpy(1.0, &g, &mut partial);
            }
            axpy(1.0, &partial, &mut expect);
        }
        assert_eq!(out.unclipped, unclipped);
        assert_eq!(out.loss_total.to_bits(), loss_total.to_bits());
        for (a, e) in out.clean_sum.iter().zip(&expect) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn clip_loop_is_bit_identical_across_thread_counts() {
        let (model, xs, ys) = setup(CLIP_CHUNK * 3 + 2);
        let clipping = ClippingStrategy::Flat(0.5);
        let layout = model.param_layout();
        let serial = clip_loop(&model, &xs, &ys, &clipping, &layout, None);
        for threads in [2, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel = clip_loop(&model, &xs, &ys, &clipping, &layout, Some(&pool));
            assert_eq!(parallel.unclipped, serial.unclipped);
            assert_eq!(parallel.loss_total.to_bits(), serial.loss_total.to_bits());
            for (a, e) in parallel.clean_sum.iter().zip(&serial.clean_sum) {
                assert_eq!(a.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn f32_mode_matches_f64_within_tolerance() {
        let (model, xs, ys) = setup(CLIP_CHUNK * 2 + 3);
        let clipping = ClippingStrategy::Flat(0.7);
        let layout = model.param_layout();
        let oracle = clip_loop(&model, &xs, &ys, &clipping, &layout, None);
        let f32_out = clip_loop_mode(
            &model,
            &xs,
            &ys,
            &clipping,
            &layout,
            None,
            ComputeMode::F32,
            Backend::native(),
        );
        assert!((oracle.loss_total - f32_out.loss_total).abs() < 1e-3 * xs.len() as f64);
        for (i, (a, b)) in oracle.clean_sum.iter().zip(&f32_out.clean_sum).enumerate() {
            let tol = 1e-4 * xs.len() as f64 + 1e-3 * a.abs();
            assert!((a - b).abs() < tol, "clean_sum[{i}]: {a} vs {b}");
        }
    }

    #[test]
    fn f32_mode_is_bit_identical_across_thread_counts() {
        let (model, xs, ys) = setup(CLIP_CHUNK * 3 + 2);
        let clipping = ClippingStrategy::Flat(0.5);
        let layout = model.param_layout();
        let serial = clip_loop_mode(
            &model,
            &xs,
            &ys,
            &clipping,
            &layout,
            None,
            ComputeMode::F32,
            Backend::native(),
        );
        for threads in [2, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel = clip_loop_mode(
                &model,
                &xs,
                &ys,
                &clipping,
                &layout,
                Some(&pool),
                ComputeMode::F32,
                Backend::native(),
            );
            assert_eq!(parallel.unclipped, serial.unclipped);
            assert_eq!(parallel.loss_total.to_bits(), serial.loss_total.to_bits());
            for (a, e) in parallel.clean_sum.iter().zip(&serial.clean_sum) {
                assert_eq!(a.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn f64_mode_delegates_to_oracle_bitwise() {
        let (model, xs, ys) = setup(CLIP_CHUNK + 4);
        let clipping = ClippingStrategy::Flat(0.9);
        let layout = model.param_layout();
        let a = clip_loop(&model, &xs, &ys, &clipping, &layout, None);
        let b = clip_loop_mode(
            &model,
            &xs,
            &ys,
            &clipping,
            &layout,
            None,
            ComputeMode::F64,
            Backend::native(),
        );
        for (x, y) in a.clean_sum.iter().zip(&b.clean_sum) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Tolerance-equivalence gate at the clip-loop level: the BLAS backend
    /// must track the native oracle closely in both precisions, and must
    /// preserve the integer clip count exactly (the tolerance is far below
    /// the margin between any pre-clip norm and the bound in this setup).
    #[cfg(feature = "blas")]
    #[test]
    fn blas_backend_clip_loop_tracks_native_within_tolerance() {
        let (model, xs, ys) = setup(CLIP_CHUNK + 7);
        let clipping = ClippingStrategy::Flat(0.7);
        let layout = model.param_layout();
        let blas = Backend::resolve("blas").unwrap();
        for compute in [ComputeMode::F64, ComputeMode::F32] {
            let oracle = clip_loop_mode(
                &model,
                &xs,
                &ys,
                &clipping,
                &layout,
                None,
                compute,
                Backend::native(),
            );
            let out = clip_loop_mode(&model, &xs, &ys, &clipping, &layout, None, compute, blas);
            assert_eq!(out.unclipped, oracle.unclipped, "{compute}");
            let loss_tol = match compute {
                ComputeMode::F64 => 1e-9 * xs.len() as f64,
                ComputeMode::F32 => 1e-3 * xs.len() as f64,
            };
            assert!(
                (oracle.loss_total - out.loss_total).abs() < loss_tol,
                "{compute} loss: {} vs {}",
                oracle.loss_total,
                out.loss_total
            );
            for (i, (a, b)) in oracle.clean_sum.iter().zip(&out.clean_sum).enumerate() {
                let tol = match compute {
                    ComputeMode::F64 => 1e-9 * (1.0 + a.abs()),
                    ComputeMode::F32 => 1e-4 * xs.len() as f64 + 1e-3 * a.abs(),
                };
                assert!((a - b).abs() < tol, "{compute} clean_sum[{i}]: {a} vs {b}");
            }
        }
    }

    #[test]
    fn loss_chain_is_chunked_in_order() {
        // The loss fold is (chunk-0 sum) + (chunk-1 sum) + …, each chunk an
        // in-order sum — exercise a ragged two-chunk split explicitly.
        let (model, xs, ys) = setup(CLIP_CHUNK + 1);
        let clipping = ClippingStrategy::Flat(1.0);
        let layout = model.param_layout();
        let out = clip_loop(&model, &xs, &ys, &clipping, &layout, None);
        let per_example: Vec<f64> = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| model.per_example_grad_scalar(x, y).0)
            .collect();
        let head: f64 = per_example[..CLIP_CHUNK].iter().sum();
        let tail: f64 = per_example[CLIP_CHUNK..].iter().sum();
        assert_eq!(out.loss_total.to_bits(), (head + tail).to_bits());
    }
}

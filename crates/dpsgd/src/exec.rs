//! The batched DPSGD clip loop and its intra-trial parallelism knob.
//!
//! [`clip_loop`] is the per-step hot path of every audit trial: per-example
//! gradients, clipping, and the clipped-gradient sum. It walks the dataset
//! in fixed chunks of [`CLIP_CHUNK`] examples, computes each chunk with one
//! batched forward/backward pass, and folds the per-chunk partial sums in
//! chunk-index order. Because the chunking is a constant of the data (never
//! of the worker count) and the fold order is fixed, the result is
//! bit-identical whether chunks run sequentially or on a thread pool —
//! the same invariant the runtime executor guarantees across trials.
//!
//! The thread count is a process-wide knob ([`set_batch_threads`]) rather
//! than a per-call argument because the trainer sits several layers below
//! the code that knows the CLI configuration, and the knob cannot affect
//! any result — only how fast it arrives.

use dpaudit_math::axpy;
use dpaudit_nn::Sequential;
use dpaudit_obs as obs;
use dpaudit_tensor::Tensor;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::clip::ClippingStrategy;

/// Examples per clip-loop chunk. A constant of the computation, not of the
/// thread count: chunk boundaries define the fixed-order reduction that
/// makes the clipped-gradient sum independent of parallelism. 16 examples
/// keeps a chunk's per-example gradient buffer around 11 MB for the largest
/// reference model (purchase MLP, ~90k parameters).
pub const CLIP_CHUNK: usize = 16;

/// Worker threads for the clip loop inside one trial (process-wide).
/// 1 = sequential (default), 0 = machine parallelism.
static BATCH_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the intra-trial clip-loop worker count: 1 = sequential, 0 = machine
/// parallelism. Safe to call at any time — the value changes throughput
/// only, never results.
pub fn set_batch_threads(n: usize) {
    BATCH_THREADS.store(n, Ordering::Relaxed);
}

/// The configured intra-trial worker count (0 = machine parallelism).
pub fn batch_threads() -> usize {
    BATCH_THREADS.load(Ordering::Relaxed)
}

/// The resolved intra-trial worker count (with 0 mapped to the machine's
/// available parallelism).
pub fn effective_batch_threads() -> usize {
    match batch_threads() {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
}

/// A thread pool sized by [`set_batch_threads`], or `None` when the knob
/// resolves to sequential execution. Build once per training run and pass
/// to every [`clip_loop`] call.
pub fn batch_pool() -> Option<ThreadPool> {
    let n = effective_batch_threads();
    (n > 1).then(|| {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("clip-loop thread pool")
    })
}

/// Aggregates of one clip-loop pass over a dataset.
#[derive(Debug, Clone)]
pub struct ClipLoopOutput {
    /// Sum of the clipped per-example gradients (flat parameter layout).
    pub clean_sum: Vec<f64>,
    /// Sum of the per-example losses.
    pub loss_total: f64,
    /// Examples whose pre-clip norm was already within the bound.
    pub unclipped: usize,
}

/// One pass of the DPSGD clip loop: per-example gradients over `(xs, ys)`
/// via the batched pipeline, clipped by `clipping` over `layout`, summed in
/// fixed chunk order. With `pool`, chunks run in parallel; the output is
/// bit-identical either way (see the module docs).
pub fn clip_loop(
    model: &Sequential,
    xs: &[Tensor],
    ys: &[usize],
    clipping: &ClippingStrategy,
    layout: &[usize],
    pool: Option<&ThreadPool>,
) -> ClipLoopOutput {
    let dim = model.param_count();
    let bound = clipping.total_bound();
    let ranges: Vec<(usize, usize)> = (0..xs.len())
        .step_by(CLIP_CHUNK)
        .map(|start| (start, usize::min(start + CLIP_CHUNK, xs.len())))
        .collect();
    let run_chunk = |(start, end): (usize, usize)| {
        let chunk_span = obs::span(obs::names::CLIP_CHUNK_SPAN);
        let (losses, mut grads) = model.per_example_grads(&xs[start..end], &ys[start..end]);
        let mut clean_sum = vec![0.0; dim];
        let mut unclipped = 0usize;
        for row in grads.data_mut().chunks_exact_mut(dim) {
            let pre_norm = clipping.clip(row, layout);
            if pre_norm <= bound {
                unclipped += 1;
            }
            axpy(1.0, row, &mut clean_sum);
        }
        let loss_total: f64 = losses.iter().sum();
        drop(chunk_span);
        ClipLoopOutput {
            clean_sum,
            loss_total,
            unclipped,
        }
    };
    let partials: Vec<ClipLoopOutput> = match pool {
        Some(pool) if ranges.len() > 1 => {
            pool.install(|| ranges.into_par_iter().map(&run_chunk).collect())
        }
        _ => ranges.into_iter().map(run_chunk).collect(),
    };
    // Fold the partials in chunk-index order — the fixed-order reduction
    // that keeps the sum independent of scheduling.
    let mut out = ClipLoopOutput {
        clean_sum: vec![0.0; dim],
        loss_total: 0.0,
        unclipped: 0,
    };
    for p in partials {
        axpy(1.0, &p.clean_sum, &mut out.clean_sum);
        out.loss_total += p.loss_total;
        out.unclipped += p.unclipped;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;
    use dpaudit_nn::{Dense, Layer};

    fn setup(n: usize) -> (Sequential, Vec<Tensor>, Vec<usize>) {
        let mut rng = seeded_rng(7);
        let model = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 5, 4)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 4, 3)),
        ]);
        let xs: Vec<Tensor> = (0..n)
            .map(|i| {
                Tensor::from_vec(
                    &[5],
                    (0..5)
                        .map(|j| ((i * 7 + j * 3) % 13) as f64 / 13.0)
                        .collect(),
                )
            })
            .collect();
        let ys: Vec<usize> = (0..n).map(|i| i % 3).collect();
        (model, xs, ys)
    }

    #[test]
    fn knob_round_trips_and_resolves_zero() {
        let before = batch_threads();
        set_batch_threads(3);
        assert_eq!(batch_threads(), 3);
        assert_eq!(effective_batch_threads(), 3);
        set_batch_threads(0);
        assert!(effective_batch_threads() >= 1);
        set_batch_threads(before);
    }

    #[test]
    fn clip_loop_matches_scalar_per_example_loop_bitwise() {
        // More examples than one chunk, with a ragged tail.
        let (model, xs, ys) = setup(CLIP_CHUNK * 2 + 5);
        let clipping = ClippingStrategy::Flat(0.7);
        let layout = model.param_layout();
        let out = clip_loop(&model, &xs, &ys, &clipping, &layout, None);

        // Chunked scalar oracle with the same fold order.
        let bound = clipping.total_bound();
        let mut expect = vec![0.0; model.param_count()];
        let mut loss_total = 0.0;
        let mut unclipped = 0;
        for chunk in xs.chunks(CLIP_CHUNK).zip(ys.chunks(CLIP_CHUNK)) {
            let mut partial = vec![0.0; model.param_count()];
            for (x, &y) in chunk.0.iter().zip(chunk.1) {
                let (loss, mut g) = model.per_example_grad_scalar(x, y);
                let pre_norm = clipping.clip(&mut g, &layout);
                if pre_norm <= bound {
                    unclipped += 1;
                }
                loss_total += loss;
                axpy(1.0, &g, &mut partial);
            }
            axpy(1.0, &partial, &mut expect);
        }
        assert_eq!(out.unclipped, unclipped);
        assert_eq!(out.loss_total.to_bits(), loss_total.to_bits());
        for (a, e) in out.clean_sum.iter().zip(&expect) {
            assert_eq!(a.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn clip_loop_is_bit_identical_across_thread_counts() {
        let (model, xs, ys) = setup(CLIP_CHUNK * 3 + 2);
        let clipping = ClippingStrategy::Flat(0.5);
        let layout = model.param_layout();
        let serial = clip_loop(&model, &xs, &ys, &clipping, &layout, None);
        for threads in [2, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let parallel = clip_loop(&model, &xs, &ys, &clipping, &layout, Some(&pool));
            assert_eq!(parallel.unclipped, serial.unclipped);
            assert_eq!(parallel.loss_total.to_bits(), serial.loss_total.to_bits());
            for (a, e) in parallel.clean_sum.iter().zip(&serial.clean_sum) {
                assert_eq!(a.to_bits(), e.to_bits());
            }
        }
    }

    #[test]
    fn loss_chain_is_chunked_in_order() {
        // The loss fold is (chunk-0 sum) + (chunk-1 sum) + …, each chunk an
        // in-order sum — exercise a ragged two-chunk split explicitly.
        let (model, xs, ys) = setup(CLIP_CHUNK + 1);
        let clipping = ClippingStrategy::Flat(1.0);
        let layout = model.param_layout();
        let out = clip_loop(&model, &xs, &ys, &clipping, &layout, None);
        let per_example: Vec<f64> = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| model.per_example_grad_scalar(x, y).0)
            .collect();
        let head: f64 = per_example[..CLIP_CHUNK].iter().sum();
        let tail: f64 = per_example[CLIP_CHUNK..].iter().sum();
        assert_eq!(out.loss_total.to_bits(), (head + tail).to_bits());
    }
}

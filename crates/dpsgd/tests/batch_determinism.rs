//! End-to-end determinism of DPSGD training under the `batch_threads` knob:
//! full transcripts (every released gradient, loss, and sensitivity) must be
//! byte-identical at any intra-trial worker count.

use dpaudit_datasets::{Dataset, NeighborSpec};
use dpaudit_dp::NeighborMode;
use dpaudit_dpsgd::{
    set_batch_threads, train_collect, DpsgdConfig, NeighborPair, SensitivityScaling, CLIP_CHUNK,
};
use dpaudit_math::seeded_rng;
use dpaudit_nn::{Dense, Layer, Sequential};
use dpaudit_tensor::Tensor;

fn setup(n: usize) -> (Sequential, NeighborPair) {
    let mut rng = seeded_rng(31);
    let model = Sequential::new(vec![
        Layer::Dense(Dense::new(&mut rng, 7, 5)),
        Layer::Relu,
        Layer::Dense(Dense::new(&mut rng, 5, 3)),
    ]);
    let mut d = Dataset::empty();
    for i in 0..n {
        let x: Vec<f64> = (0..7)
            .map(|j| ((i * 11 + j * 5) % 17) as f64 / 17.0 - 0.4)
            .collect();
        d.push(Tensor::from_vec(&[7], x), i % 3);
    }
    let pair = NeighborPair::from_spec(
        &d,
        &NeighborSpec::Replace {
            index: 1,
            record: Tensor::full(&[7], 0.8),
            label: 2,
        },
    );
    (model, pair)
}

fn transcript_json(threads: usize) -> String {
    set_batch_threads(threads);
    // Several chunks with a ragged tail, so parallel scheduling has real
    // work to reorder if the fixed-order reduction were broken.
    let (model0, pair) = setup(CLIP_CHUNK * 3 + 3);
    let cfg = DpsgdConfig::new(
        1.0,
        0.05,
        4,
        NeighborMode::Bounded,
        2.0,
        SensitivityScaling::Local,
    );
    let mut model = model0;
    let t = train_collect(&mut model, &pair, true, &cfg, &mut seeded_rng(32));
    let json = serde_json::to_string(&t).expect("serialize transcript");
    set_batch_threads(1);
    json
}

#[test]
fn transcripts_are_byte_identical_across_batch_thread_counts() {
    let serial = transcript_json(1);
    for threads in [2, 4, 0] {
        let parallel = transcript_json(threads);
        assert_eq!(
            serial, parallel,
            "transcript differs at batch_threads={threads}"
        );
    }
    assert!(serial.contains("noisy_sum"));
}

//! Weight initialisation.

use rand::Rng;

/// Glorot/Xavier uniform initialisation: samples from
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// Used for every weight tensor in the reference networks; biases start at
/// zero. Deterministic given the caller's RNG, which is how the DI adversary
/// is granted its assumed knowledge of the initial weights θ₀ (paper §6.1).
pub fn glorot_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    fan_in: usize,
    fan_out: usize,
    n: usize,
) -> Vec<f64> {
    assert!(fan_in + fan_out > 0, "glorot_uniform: zero fan");
    let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
    (0..n).map(|_| rng.gen_range(-limit..limit)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;

    #[test]
    fn values_respect_limit() {
        let mut rng = seeded_rng(1);
        let limit = (6.0 / 30.0_f64).sqrt();
        let w = glorot_uniform(&mut rng, 10, 20, 1000);
        assert_eq!(w.len(), 1000);
        assert!(w.iter().all(|&x| x > -limit && x < limit));
    }

    #[test]
    fn mean_near_zero() {
        let mut rng = seeded_rng(2);
        let w = glorot_uniform(&mut rng, 100, 100, 50_000);
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!(mean.abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = glorot_uniform(&mut seeded_rng(7), 3, 4, 12);
        let b = glorot_uniform(&mut seeded_rng(7), 3, 4, 12);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero fan")]
    fn zero_fan_rejected() {
        glorot_uniform(&mut seeded_rng(1), 0, 0, 1);
    }
}

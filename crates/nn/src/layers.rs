//! Network layers with exact forward/backward passes.
//!
//! Each layer exposes `forward` (producing an output and a [`Cache`] of the
//! intermediates the backward pass needs) and `backward` (consuming the cache
//! and the upstream gradient, producing the input gradient and the flat
//! parameter gradient in the layer's canonical parameter order).

use dpaudit_tensor::{
    conv2d_backward, conv2d_forward, matvec, matvec_transposed, maxpool2d_backward,
    maxpool2d_forward, outer_product, Backend, Conv2dDims, PoolDims, Tensor,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::batched;
use crate::init::glorot_uniform;

/// Per-layer forward intermediates required by the backward pass.
#[derive(Debug, Clone)]
pub enum Cache {
    /// Dense layer cache.
    Dense {
        /// The layer's input vector.
        input: Tensor,
    },
    /// Convolution cache.
    Conv2d {
        /// The layer's input volume.
        input: Tensor,
        /// The spatial dimensions resolved at forward time.
        dims: Conv2dDims,
    },
    /// Batch-norm cache.
    BatchNorm2d {
        /// The normalised (pre-scale) activations x̂.
        normalized: Tensor,
        /// Per-channel `1/√(var + eps)`.
        inv_std: Vec<f64>,
    },
    /// ReLU cache.
    Relu {
        /// Which inputs were strictly positive.
        mask: Vec<bool>,
    },
    /// Max-pooling cache.
    MaxPool2d {
        /// Flat input index of each window maximum.
        argmax: Vec<usize>,
        /// The pooling dimensions resolved at forward time.
        dims: PoolDims,
    },
    /// Flatten cache.
    Flatten {
        /// The original input shape to restore on backward.
        shape: Vec<usize>,
    },
}

/// Per-layer forward intermediates for a whole batch — the batched
/// counterpart of [`Cache`]. All buffers are the per-example caches
/// concatenated in example order.
#[derive(Debug, Clone)]
pub enum BatchCache {
    /// Dense layer cache.
    Dense {
        /// The layer's `[B, in_features]` input.
        input: Tensor,
    },
    /// Convolution cache: the [`dpaudit_tensor::im2col_into`] patch
    /// matrices of every example.
    Conv2d {
        /// `B` concatenated `[patch_rows, patch_cols]` matrices.
        patches: Vec<f64>,
        /// The spatial dimensions resolved at forward time (per example).
        dims: Conv2dDims,
    },
    /// Batch-norm cache.
    BatchNorm2d {
        /// The normalised (pre-scale) activations x̂, shape `[B, C, H, W]`.
        normalized: Tensor,
        /// Per-channel `1/√(var + eps)`.
        inv_std: Vec<f64>,
    },
    /// ReLU cache.
    Relu {
        /// Which inputs were strictly positive, over the whole batch buffer.
        mask: Vec<bool>,
    },
    /// Max-pooling cache.
    MaxPool2d {
        /// Example-relative argmax indices, concatenated per example.
        argmax: Vec<usize>,
        /// The pooling dimensions resolved at forward time (per example).
        dims: PoolDims,
    },
    /// Flatten cache.
    Flatten {
        /// The original per-example shape to restore on backward.
        shape: Vec<usize>,
    },
}

/// Fully connected layer `y = W·x + b` with `W: [out, in]`, `b: [out]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    /// Row-major weight matrix, shape `[out_features, in_features]`.
    pub weight: Tensor,
    /// Bias vector, shape `[out_features]`.
    pub bias: Tensor,
}

impl Dense {
    /// Glorot-initialised dense layer.
    pub fn new<R: Rng + ?Sized>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Self {
            weight: Tensor::from_vec(
                &[out_features, in_features],
                glorot_uniform(rng, in_features, out_features, in_features * out_features),
            ),
            bias: Tensor::zeros(&[out_features]),
        }
    }

    fn in_features(&self) -> usize {
        self.weight.shape()[1]
    }

    fn out_features(&self) -> usize {
        self.weight.shape()[0]
    }
}

/// 2-D convolution layer (valid padding, stride 1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Kernels, shape `[out_channels, in_channels, k_h, k_w]`.
    pub kernels: Tensor,
    /// Per-output-channel bias, shape `[out_channels]`.
    pub bias: Tensor,
}

impl Conv2d {
    /// Glorot-initialised convolution with square `k × k` kernels.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        in_channels: usize,
        out_channels: usize,
        k: usize,
    ) -> Self {
        let fan_in = in_channels * k * k;
        let fan_out = out_channels * k * k;
        let n = out_channels * in_channels * k * k;
        Self {
            kernels: Tensor::from_vec(
                &[out_channels, in_channels, k, k],
                glorot_uniform(rng, fan_in, fan_out, n),
            ),
            bias: Tensor::zeros(&[out_channels]),
        }
    }

    fn dims_for(&self, input: &Tensor) -> Conv2dDims {
        self.dims_for_shape(input.shape())
    }

    /// Resolve spatial dimensions from a `[C, H, W]` example shape.
    fn dims_for_shape(&self, is: &[usize]) -> Conv2dDims {
        let ks = self.kernels.shape();
        assert_eq!(is.len(), 3, "Conv2d expects a [C, H, W] input, got {is:?}");
        assert_eq!(
            is[0], ks[1],
            "Conv2d: input has {} channels, kernels expect {}",
            is[0], ks[1]
        );
        Conv2dDims {
            in_channels: ks[1],
            out_channels: ks[0],
            in_h: is[1],
            in_w: is[2],
            k_h: ks[2],
            k_w: ks[3],
        }
    }
}

/// Frozen-statistics batch normalisation over the channel dimension of a
/// `[C, H, W]` volume.
///
/// Normalisation uses `running_mean` / `running_var`, which are *state*, not
/// parameters: they are refreshed from clean batches by
/// [`crate::Sequential::update_norm_stats`] and treated as constants by the
/// backward pass. `gamma` (scale) and `beta` (shift) are learnable.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Learnable per-channel scale.
    pub gamma: Tensor,
    /// Learnable per-channel shift.
    pub beta: Tensor,
    /// Running per-channel mean (state).
    pub running_mean: Vec<f64>,
    /// Running per-channel variance (state).
    pub running_var: Vec<f64>,
    /// Exponential-moving-average momentum for the running statistics.
    pub momentum: f64,
    /// Variance floor added before the square root.
    pub eps: f64,
}

impl BatchNorm2d {
    /// Identity-initialised batch norm for `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        Self {
            gamma: Tensor::full(&[channels], 1.0),
            beta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.9,
            eps: 1e-5,
        }
    }

    fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// Fold a batch's per-channel mean/variance into the running statistics.
    pub fn update_stats(&mut self, batch_mean: &[f64], batch_var: &[f64]) {
        assert_eq!(
            batch_mean.len(),
            self.channels(),
            "update_stats: mean length"
        );
        assert_eq!(batch_var.len(), self.channels(), "update_stats: var length");
        for c in 0..self.channels() {
            self.running_mean[c] =
                self.momentum * self.running_mean[c] + (1.0 - self.momentum) * batch_mean[c];
            self.running_var[c] =
                self.momentum * self.running_var[c] + (1.0 - self.momentum) * batch_var[c];
        }
    }
}

/// Max pooling with a square window and stride equal to the window.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Window (and stride) size.
    pub pool: usize,
}

impl MaxPool2d {
    fn dims_for(&self, input: &Tensor) -> PoolDims {
        self.dims_for_shape(input.shape())
    }

    /// Resolve pooling dimensions from a `[C, H, W]` example shape.
    fn dims_for_shape(&self, is: &[usize]) -> PoolDims {
        assert_eq!(
            is.len(),
            3,
            "MaxPool2d expects a [C, H, W] input, got {is:?}"
        );
        PoolDims {
            channels: is[0],
            in_h: is[1],
            in_w: is[2],
            pool_h: self.pool,
            pool_w: self.pool,
        }
    }
}

/// A network layer. Enum dispatch keeps the hot per-example-gradient loop
/// free of virtual calls and lets caches be plain data.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected.
    Dense(Dense),
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Frozen-stats batch normalisation.
    BatchNorm2d(BatchNorm2d),
    /// Rectified linear unit.
    Relu,
    /// Max pooling.
    MaxPool2d(MaxPool2d),
    /// Collapse `[C, H, W]` (or any shape) to a flat vector.
    Flatten,
}

impl Layer {
    /// Number of learnable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Dense(d) => d.weight.len() + d.bias.len(),
            Layer::Conv2d(c) => c.kernels.len() + c.bias.len(),
            Layer::BatchNorm2d(b) => b.gamma.len() + b.beta.len(),
            Layer::Relu | Layer::MaxPool2d(_) | Layer::Flatten => 0,
        }
    }

    /// Append this layer's parameters to `out` in canonical order.
    pub fn append_params(&self, out: &mut Vec<f64>) {
        match self {
            Layer::Dense(d) => {
                out.extend_from_slice(d.weight.data());
                out.extend_from_slice(d.bias.data());
            }
            Layer::Conv2d(c) => {
                out.extend_from_slice(c.kernels.data());
                out.extend_from_slice(c.bias.data());
            }
            Layer::BatchNorm2d(b) => {
                out.extend_from_slice(b.gamma.data());
                out.extend_from_slice(b.beta.data());
            }
            Layer::Relu | Layer::MaxPool2d(_) | Layer::Flatten => {}
        }
    }

    /// Load this layer's parameters from the front of `params`; returns the
    /// number of values consumed.
    pub fn load_params(&mut self, params: &[f64]) -> usize {
        let n = self.param_count();
        assert!(params.len() >= n, "load_params: not enough values");
        match self {
            Layer::Dense(d) => {
                let (w, b) = params[..n].split_at(d.weight.len());
                d.weight.data_mut().copy_from_slice(w);
                d.bias.data_mut().copy_from_slice(b);
            }
            Layer::Conv2d(c) => {
                let (k, b) = params[..n].split_at(c.kernels.len());
                c.kernels.data_mut().copy_from_slice(k);
                c.bias.data_mut().copy_from_slice(b);
            }
            Layer::BatchNorm2d(bn) => {
                let (g, b) = params[..n].split_at(bn.gamma.len());
                bn.gamma.data_mut().copy_from_slice(g);
                bn.beta.data_mut().copy_from_slice(b);
            }
            Layer::Relu | Layer::MaxPool2d(_) | Layer::Flatten => {}
        }
        n
    }

    /// In-place gradient-descent update `θ ← θ − lr·g` from the front of
    /// `grad`; returns the number of gradient values consumed.
    pub fn apply_step(&mut self, grad: &[f64], lr: f64) -> usize {
        let n = self.param_count();
        assert!(grad.len() >= n, "apply_step: not enough gradient values");
        match self {
            Layer::Dense(d) => {
                let (gw, gb) = grad[..n].split_at(d.weight.len());
                for (w, g) in d.weight.data_mut().iter_mut().zip(gw) {
                    *w -= lr * g;
                }
                for (b, g) in d.bias.data_mut().iter_mut().zip(gb) {
                    *b -= lr * g;
                }
            }
            Layer::Conv2d(c) => {
                let (gk, gb) = grad[..n].split_at(c.kernels.len());
                for (k, g) in c.kernels.data_mut().iter_mut().zip(gk) {
                    *k -= lr * g;
                }
                for (b, g) in c.bias.data_mut().iter_mut().zip(gb) {
                    *b -= lr * g;
                }
            }
            Layer::BatchNorm2d(bn) => {
                let (gg, gb) = grad[..n].split_at(bn.gamma.len());
                for (p, g) in bn.gamma.data_mut().iter_mut().zip(gg) {
                    *p -= lr * g;
                }
                for (p, g) in bn.beta.data_mut().iter_mut().zip(gb) {
                    *p -= lr * g;
                }
            }
            Layer::Relu | Layer::MaxPool2d(_) | Layer::Flatten => {}
        }
        n
    }

    /// Forward pass on a single example, producing the output and the cache
    /// for [`Layer::backward`].
    pub fn forward(&self, input: &Tensor) -> (Tensor, Cache) {
        match self {
            Layer::Dense(d) => {
                assert_eq!(
                    input.len(),
                    d.in_features(),
                    "Dense: input length {} != in_features {}",
                    input.len(),
                    d.in_features()
                );
                let mut y = matvec(
                    d.weight.data(),
                    input.data(),
                    d.out_features(),
                    d.in_features(),
                );
                for (yi, bi) in y.iter_mut().zip(d.bias.data()) {
                    *yi += bi;
                }
                (
                    Tensor::from_vec(&[d.out_features()], y),
                    Cache::Dense {
                        input: input.clone(),
                    },
                )
            }
            Layer::Conv2d(c) => {
                let dims = c.dims_for(input);
                let out = conv2d_forward(input.data(), c.kernels.data(), c.bias.data(), &dims);
                (
                    Tensor::from_vec(&[dims.out_channels, dims.out_h(), dims.out_w()], out),
                    Cache::Conv2d {
                        input: input.clone(),
                        dims,
                    },
                )
            }
            Layer::BatchNorm2d(b) => {
                let is = input.shape();
                assert_eq!(is.len(), 3, "BatchNorm2d expects [C, H, W], got {is:?}");
                assert_eq!(is[0], b.channels(), "BatchNorm2d: channel mismatch");
                let plane = is[1] * is[2];
                let inv_std: Vec<f64> = b
                    .running_var
                    .iter()
                    .map(|&v| 1.0 / (v + b.eps).sqrt())
                    .collect();
                let mut normalized = vec![0.0; input.len()];
                let mut out = vec![0.0; input.len()];
                // The channel index addresses several parallel per-channel
                // arrays plus plane offsets; a range loop is the clear form.
                #[allow(clippy::needless_range_loop)]
                for c in 0..b.channels() {
                    let g = b.gamma.data()[c];
                    let bb = b.beta.data()[c];
                    let m = b.running_mean[c];
                    let is_c = inv_std[c];
                    for p in 0..plane {
                        let idx = c * plane + p;
                        let xhat = (input.data()[idx] - m) * is_c;
                        normalized[idx] = xhat;
                        out[idx] = g * xhat + bb;
                    }
                }
                (
                    Tensor::from_vec(is, out),
                    Cache::BatchNorm2d {
                        normalized: Tensor::from_vec(is, normalized),
                        inv_std,
                    },
                )
            }
            Layer::Relu => {
                let mask: Vec<bool> = input.data().iter().map(|&x| x > 0.0).collect();
                let out = input.map(|x| if x > 0.0 { x } else { 0.0 });
                (out, Cache::Relu { mask })
            }
            Layer::MaxPool2d(p) => {
                let dims = p.dims_for(input);
                let (out, argmax) = maxpool2d_forward(input.data(), &dims);
                (
                    Tensor::from_vec(&[dims.channels, dims.out_h(), dims.out_w()], out),
                    Cache::MaxPool2d { argmax, dims },
                )
            }
            Layer::Flatten => {
                let shape = input.shape().to_vec();
                let n = input.len();
                (input.clone().reshape(&[n]), Cache::Flatten { shape })
            }
        }
    }

    /// Backward pass. Returns `(d_input, d_params)` where `d_params` follows
    /// the same canonical order as [`Layer::append_params`].
    pub fn backward(&self, d_out: &Tensor, cache: &Cache) -> (Tensor, Vec<f64>) {
        match (self, cache) {
            (Layer::Dense(d), Cache::Dense { input }) => {
                let (m, n) = (d.out_features(), d.in_features());
                assert_eq!(d_out.len(), m, "Dense backward: d_out length mismatch");
                let d_in = matvec_transposed(d.weight.data(), d_out.data(), m, n);
                let mut d_params = outer_product(d_out.data(), input.data());
                d_params.extend_from_slice(d_out.data());
                (Tensor::from_vec(&[n], d_in), d_params)
            }
            (Layer::Conv2d(c), Cache::Conv2d { input, dims }) => {
                let (d_in, d_k, d_b) =
                    conv2d_backward(input.data(), c.kernels.data(), d_out.data(), dims);
                let mut d_params = d_k;
                d_params.extend_from_slice(&d_b);
                (
                    Tensor::from_vec(&[dims.in_channels, dims.in_h, dims.in_w], d_in),
                    d_params,
                )
            }
            (
                Layer::BatchNorm2d(b),
                Cache::BatchNorm2d {
                    normalized,
                    inv_std,
                },
            ) => {
                let is = normalized.shape();
                let plane = is[1] * is[2];
                let mut d_in = vec![0.0; normalized.len()];
                let mut d_gamma = vec![0.0; b.channels()];
                let mut d_beta = vec![0.0; b.channels()];
                #[allow(clippy::needless_range_loop)]
                for c in 0..b.channels() {
                    let g = b.gamma.data()[c];
                    let is_c = inv_std[c];
                    for p in 0..plane {
                        let idx = c * plane + p;
                        let dy = d_out.data()[idx];
                        d_gamma[c] += dy * normalized.data()[idx];
                        d_beta[c] += dy;
                        // Stats are constants, so the chain rule is linear.
                        d_in[idx] = dy * g * is_c;
                    }
                }
                let mut d_params = d_gamma;
                d_params.extend_from_slice(&d_beta);
                (Tensor::from_vec(is, d_in), d_params)
            }
            (Layer::Relu, Cache::Relu { mask }) => {
                assert_eq!(d_out.len(), mask.len(), "ReLU backward: length mismatch");
                let d_in: Vec<f64> = d_out
                    .data()
                    .iter()
                    .zip(mask)
                    .map(|(&g, &m)| if m { g } else { 0.0 })
                    .collect();
                (Tensor::from_vec(d_out.shape(), d_in), Vec::new())
            }
            (Layer::MaxPool2d(_), Cache::MaxPool2d { argmax, dims }) => {
                let d_in = maxpool2d_backward(d_out.data(), argmax, dims);
                (
                    Tensor::from_vec(&[dims.channels, dims.in_h, dims.in_w], d_in),
                    Vec::new(),
                )
            }
            (Layer::Flatten, Cache::Flatten { shape }) => {
                (d_out.clone().reshape(shape), Vec::new())
            }
            _ => panic!("Layer::backward: cache does not match layer kind"),
        }
    }

    /// Forward pass on a `[B, ...]` batch tensor, producing a `[B, ...]`
    /// output and the cache for [`Layer::backward_batch`].
    ///
    /// Each example's arithmetic follows the exact accumulation order of the
    /// single-example [`Layer::forward`], so batched outputs are bit-identical
    /// to stacking `B` scalar passes. Dense and convolution layers run one
    /// gemm-shaped call per batch/example instead of `B` matvecs.
    pub fn forward_batch(&self, input: &Tensor) -> (Tensor, BatchCache) {
        self.forward_batch_on(Backend::native(), input)
    }

    /// [`Layer::forward_batch`] with the gemm-shaped work routed through a
    /// [`Backend`] handle. On [`Backend::native`] the two are bit-identical;
    /// other backends are tolerance-equivalent only.
    pub fn forward_batch_on(&self, backend: Backend, input: &Tensor) -> (Tensor, BatchCache) {
        let is = input.shape();
        let batch = *is.first().expect("forward_batch: rank-0 input");
        match self {
            Layer::Dense(d) => {
                let (m, n) = (d.out_features(), d.in_features());
                assert_eq!(
                    is,
                    &[batch, n],
                    "Dense: batched input must be [B, {n}], got {is:?}"
                );
                let y = batched::dense_forward(
                    backend,
                    input.data(),
                    d.weight.data(),
                    d.bias.data(),
                    batch,
                    n,
                    m,
                );
                (
                    Tensor::from_vec(&[batch, m], y),
                    BatchCache::Dense {
                        input: input.clone(),
                    },
                )
            }
            Layer::Conv2d(c) => {
                assert_eq!(
                    is.len(),
                    4,
                    "Conv2d expects a [B, C, H, W] input, got {is:?}"
                );
                let dims = c.dims_for_shape(&is[1..]);
                let (out, patches) = batched::conv_forward(
                    backend,
                    input.data(),
                    c.kernels.data(),
                    c.bias.data(),
                    &dims,
                    batch,
                );
                (
                    Tensor::from_vec(&[batch, dims.out_channels, dims.out_h(), dims.out_w()], out),
                    BatchCache::Conv2d { patches, dims },
                )
            }
            Layer::BatchNorm2d(b) => {
                assert_eq!(is.len(), 4, "BatchNorm2d expects [B, C, H, W], got {is:?}");
                assert_eq!(is[1], b.channels(), "BatchNorm2d: channel mismatch");
                let plane = is[2] * is[3];
                let inv_std: Vec<f64> = b
                    .running_var
                    .iter()
                    .map(|&v| 1.0 / (v + b.eps).sqrt())
                    .collect();
                let (out, normalized) = batched::batchnorm_forward(
                    input.data(),
                    b.gamma.data(),
                    b.beta.data(),
                    &b.running_mean,
                    &inv_std,
                    plane,
                    batch,
                );
                (
                    Tensor::from_vec(is, out),
                    BatchCache::BatchNorm2d {
                        normalized: Tensor::from_vec(is, normalized),
                        inv_std,
                    },
                )
            }
            Layer::Relu => {
                let (out, mask) = batched::relu_forward(input.data());
                (Tensor::from_vec(is, out), BatchCache::Relu { mask })
            }
            Layer::MaxPool2d(p) => {
                assert_eq!(
                    is.len(),
                    4,
                    "MaxPool2d expects a [B, C, H, W] input, got {is:?}"
                );
                let dims = p.dims_for_shape(&is[1..]);
                let (out, argmax) = batched::maxpool_forward(input.data(), &dims, batch);
                (
                    Tensor::from_vec(&[batch, dims.channels, dims.out_h(), dims.out_w()], out),
                    BatchCache::MaxPool2d { argmax, dims },
                )
            }
            Layer::Flatten => {
                let shape = is[1..].to_vec();
                let n: usize = shape.iter().product();
                (
                    input.clone().reshape(&[batch, n]),
                    BatchCache::Flatten { shape },
                )
            }
        }
    }

    /// Batched backward pass. Returns `d_input`; this layer's per-example
    /// parameter gradients ([`Layer::param_count`] values each, canonical
    /// order) are written straight into `d_params` at
    /// `d_params[b * stride + offset..]` for example `b` — the caller's flat
    /// `[B, total_params]` buffer, avoiding a per-layer staging copy. The
    /// target segments must be zero on entry (accumulating layers rely on
    /// it). Parameterless layers never touch `d_params`.
    pub fn backward_batch(
        &self,
        d_out: &Tensor,
        cache: &BatchCache,
        d_params: &mut [f64],
        stride: usize,
        offset: usize,
    ) -> Tensor {
        self.backward_batch_on(Backend::native(), d_out, cache, d_params, stride, offset)
    }

    /// [`Layer::backward_batch`] with the gemm-shaped work routed through a
    /// [`Backend`] handle. On [`Backend::native`] the two are bit-identical;
    /// other backends are tolerance-equivalent only.
    pub fn backward_batch_on(
        &self,
        backend: Backend,
        d_out: &Tensor,
        cache: &BatchCache,
        d_params: &mut [f64],
        stride: usize,
        offset: usize,
    ) -> Tensor {
        let batch = *d_out.shape().first().expect("backward_batch: rank-0 d_out");
        match (self, cache) {
            (Layer::Dense(d), BatchCache::Dense { input }) => {
                let (m, n) = (d.out_features(), d.in_features());
                assert_eq!(
                    d_out.shape(),
                    &[batch, m],
                    "Dense backward: d_out shape mismatch"
                );
                let d_in = batched::dense_backward(
                    backend,
                    d_out.data(),
                    input.data(),
                    d.weight.data(),
                    d_params,
                    stride,
                    offset,
                    batch,
                    n,
                    m,
                    true,
                );
                Tensor::from_vec(&[batch, n], d_in)
            }
            (Layer::Conv2d(c), BatchCache::Conv2d { patches, dims }) => {
                assert_eq!(
                    d_out.len(),
                    batch * dims.out_channels * dims.patch_rows(),
                    "Conv2d backward: d_out length mismatch"
                );
                let d_in = batched::conv_backward(
                    backend,
                    d_out.data(),
                    patches,
                    c.kernels.data(),
                    dims,
                    d_params,
                    stride,
                    offset,
                    batch,
                    true,
                );
                Tensor::from_vec(&[batch, dims.in_channels, dims.in_h, dims.in_w], d_in)
            }
            (
                Layer::BatchNorm2d(b),
                BatchCache::BatchNorm2d {
                    normalized,
                    inv_std,
                },
            ) => {
                let is = normalized.shape();
                let plane = is[2] * is[3];
                let d_in = batched::batchnorm_backward(
                    d_out.data(),
                    normalized.data(),
                    b.gamma.data(),
                    inv_std,
                    plane,
                    d_params,
                    stride,
                    offset,
                    batch,
                );
                Tensor::from_vec(is, d_in)
            }
            (Layer::Relu, BatchCache::Relu { mask }) => {
                let d_in = batched::relu_backward(d_out.data(), mask);
                Tensor::from_vec(d_out.shape(), d_in)
            }
            (Layer::MaxPool2d(_), BatchCache::MaxPool2d { argmax, dims }) => {
                let d_in = batched::maxpool_backward(d_out.data(), argmax, dims);
                Tensor::from_vec(&[batch, dims.channels, dims.in_h, dims.in_w], d_in)
            }
            (Layer::Flatten, BatchCache::Flatten { shape }) => {
                let mut full = Vec::with_capacity(shape.len() + 1);
                full.push(batch);
                full.extend_from_slice(shape);
                d_out.clone().reshape(&full)
            }
            _ => panic!("Layer::backward_batch: cache does not match layer kind"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;

    #[test]
    fn dense_forward_known() {
        let mut d = Dense::new(&mut seeded_rng(0), 2, 2);
        d.weight = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        d.bias = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let layer = Layer::Dense(d);
        let (y, _) = layer.forward(&Tensor::from_vec(&[2], vec![5.0, 6.0]));
        assert_eq!(y.data(), &[17.5, 38.5]);
    }

    #[test]
    fn dense_backward_shapes_and_values() {
        let mut d = Dense::new(&mut seeded_rng(0), 3, 2);
        d.weight = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 2.0, -1.0, 1.0, 0.0]);
        d.bias = Tensor::zeros(&[2]);
        let layer = Layer::Dense(d);
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let (_, cache) = layer.forward(&x);
        let d_out = Tensor::from_vec(&[2], vec![1.0, 1.0]);
        let (d_in, d_params) = layer.backward(&d_out, &cache);
        // d_in = Wᵀ · d_out = [1-1, 0+1, 2+0] = [0, 1, 2]
        assert_eq!(d_in.data(), &[0.0, 1.0, 2.0]);
        // d_W = d_out ⊗ x, then d_b = d_out.
        assert_eq!(
            d_params,
            vec![1.0, 2.0, 3.0, 1.0, 2.0, 3.0, /* bias */ 1.0, 1.0]
        );
    }

    #[test]
    fn relu_masks_negatives() {
        let layer = Layer::Relu;
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -3.0]);
        let (y, cache) = layer.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0, 0.0]);
        let (d_in, _) = layer.backward(&Tensor::from_vec(&[4], vec![1.0; 4]), &cache);
        assert_eq!(d_in.data(), &[0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn flatten_round_trip() {
        let layer = Layer::Flatten;
        let x = Tensor::from_vec(&[2, 2, 2], (0..8).map(|i| i as f64).collect());
        let (y, cache) = layer.forward(&x);
        assert_eq!(y.shape(), &[8]);
        let (d_in, _) = layer.backward(&y, &cache);
        assert_eq!(d_in.shape(), &[2, 2, 2]);
        assert_eq!(d_in.data(), x.data());
    }

    #[test]
    fn batchnorm_identity_at_init() {
        // With running stats (0, 1), gamma=1, beta=0, eps tiny: y ≈ x.
        let layer = Layer::BatchNorm2d(BatchNorm2d::new(2));
        let x = Tensor::from_vec(&[2, 1, 2], vec![1.0, -2.0, 3.0, 0.5]);
        let (y, _) = layer.forward(&x);
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn batchnorm_normalizes_with_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.momentum = 0.0; // take stats verbatim
        bn.update_stats(&[10.0], &[4.0]);
        let layer = Layer::BatchNorm2d(bn);
        let x = Tensor::from_vec(&[1, 1, 2], vec![10.0, 14.0]);
        let (y, _) = layer.forward(&x);
        assert!((y.data()[0] - 0.0).abs() < 1e-3);
        assert!((y.data()[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_momentum_blends() {
        let mut bn = BatchNorm2d::new(1);
        bn.momentum = 0.5;
        bn.update_stats(&[2.0], &[3.0]);
        assert!((bn.running_mean[0] - 1.0).abs() < 1e-12);
        assert!((bn.running_var[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn param_round_trip_all_layer_kinds() {
        let mut rng = seeded_rng(3);
        let layers = vec![
            Layer::Conv2d(Conv2d::new(&mut rng, 1, 2, 3)),
            Layer::BatchNorm2d(BatchNorm2d::new(2)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { pool: 2 }),
            Layer::Flatten,
            Layer::Dense(Dense::new(&mut rng, 8, 4)),
        ];
        for mut layer in layers {
            let mut params = Vec::new();
            layer.append_params(&mut params);
            assert_eq!(params.len(), layer.param_count());
            // Perturb, load back, and compare.
            let perturbed: Vec<f64> = params.iter().map(|x| x + 1.0).collect();
            let consumed = layer.load_params(&perturbed);
            assert_eq!(consumed, params.len());
            let mut reread = Vec::new();
            layer.append_params(&mut reread);
            assert_eq!(reread, perturbed);
        }
    }

    #[test]
    fn apply_step_moves_against_gradient() {
        let mut layer = Layer::Dense(Dense::new(&mut seeded_rng(4), 2, 1));
        let mut before = Vec::new();
        layer.append_params(&mut before);
        let grad = vec![1.0, -2.0, 0.5];
        layer.apply_step(&grad, 0.1);
        let mut after = Vec::new();
        layer.append_params(&mut after);
        for i in 0..3 {
            assert!((after[i] - (before[i] - 0.1 * grad[i])).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "cache does not match")]
    fn mismatched_cache_panics() {
        let layer = Layer::Relu;
        let cache = Cache::Flatten { shape: vec![1] };
        layer.backward(&Tensor::zeros(&[1]), &cache);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn batchnorm_channel_mismatch_panics() {
        let layer = Layer::BatchNorm2d(BatchNorm2d::new(3));
        layer.forward(&Tensor::zeros(&[2, 2, 2]));
    }
}

//! Element-generic batched layer kernels, shared by the f64 pipeline
//! ([`crate::layers::Layer::forward_batch`]) and the f32 storage mode
//! ([`crate::batch32::SequentialF32`]).
//!
//! Each helper is written once against [`Elem`] and a [`Backend`] handle:
//! the two precisions and every compute backend flow through the same code
//! path, so the accumulation order per element type is defined in exactly
//! one place. On [`Backend::native`] these are bit-identical to the
//! pre-refactor per-precision bodies they replaced — the gemm entry points
//! the backend dispatches to are the very same dispatched kernels, and the
//! non-gemm arithmetic is untouched.
//!
//! All helpers work on flat row-major `[B, ...]` slices; shape validation
//! stays with the callers (which own the layer structs and batch shapes).

use dpaudit_tensor::{
    conv2d_backward_input_into, conv2d_backward_params_on, conv2d_forward_gemm_on,
    maxpool2d_backward, maxpool2d_forward, Backend, Conv2dDims, Elem, PoolDims,
};

/// Batched dense forward `Y = X·Wᵀ + b`: one gemm for the whole batch, the
/// bias joining after the dot product (matching the scalar layer's
/// add-after-matvec order). `input` is `[B, in_f]`, `weight` is
/// `[out_f, in_f]`; returns `[B, out_f]`.
pub(crate) fn dense_forward<T: Elem>(
    backend: Backend,
    input: &[T],
    weight: &[T],
    bias: &[T],
    batch: usize,
    in_f: usize,
    out_f: usize,
) -> Vec<T> {
    let mut y = vec![T::ZERO; batch * out_f];
    T::matmul_nt_acc_on(backend, &mut y, input, weight, batch, in_f, out_f);
    for row in y.chunks_exact_mut(out_f) {
        for (yi, bi) in row.iter_mut().zip(bias) {
            *yi += *bi;
        }
    }
    y
}

/// Batched dense backward: `dX = dY·W` as one gemm (skipped when
/// `need_d_in` is false — the input is data, not a parameter), and each
/// example's `[dW | db]` segment written at `flat[b·stride + offset..]` as
/// the outer product `δ ⊗ x` followed by `δ`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dense_backward<T: Elem>(
    backend: Backend,
    d_out: &[T],
    input: &[T],
    weight: &[T],
    flat: &mut [T],
    stride: usize,
    offset: usize,
    batch: usize,
    in_f: usize,
    out_f: usize,
    need_d_in: bool,
) -> Vec<T> {
    let (n, m) = (in_f, out_f);
    let mut d_in = vec![T::ZERO; if need_d_in { batch * n } else { 0 }];
    if need_d_in {
        T::matmul_acc_on(backend, &mut d_in, d_out, weight, batch, m, n);
    }
    for (ex, (dy, x)) in d_out.chunks_exact(m).zip(input.chunks_exact(n)).enumerate() {
        let base = ex * stride + offset;
        let row = &mut flat[base..base + m * n + m];
        for (j, &dv) in dy.iter().enumerate() {
            for (dst, &xv) in row[j * n..(j + 1) * n].iter_mut().zip(x) {
                *dst = dv * xv;
            }
        }
        row[m * n..].copy_from_slice(dy);
    }
    d_in
}

/// Batched convolution forward: per-example `im2col` lowering and one
/// forward gemm each, writing straight into slices of batch-sized buffers.
/// Returns `(out, patches)` — the patch matrices are the backward cache.
pub(crate) fn conv_forward<T: Elem>(
    backend: Backend,
    input: &[T],
    kernels: &[T],
    bias: &[T],
    dims: &Conv2dDims,
    batch: usize,
) -> (Vec<T>, Vec<T>) {
    let ex_len = dims.in_channels * dims.in_h * dims.in_w;
    let (rows, cols) = (dims.patch_rows(), dims.patch_cols());
    let mut patches = vec![T::ZERO; batch * rows * cols];
    let mut out = vec![T::ZERO; batch * dims.out_channels * rows];
    for ((ex, p), o) in input
        .chunks_exact(ex_len)
        .zip(patches.chunks_exact_mut(rows * cols))
        .zip(out.chunks_exact_mut(dims.out_channels * rows))
    {
        T::im2col_on(backend, ex, dims, p);
        conv2d_forward_gemm_on(backend, p, kernels, bias, dims, o);
    }
    (out, patches)
}

/// Batched convolution backward: per-example parameter gradients written
/// straight into the caller's `[dK | db]` segment of `flat`, and the input
/// gradient (the transposed convolution) computed only when `need_d_in`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_backward<T: Elem>(
    backend: Backend,
    d_out: &[T],
    patches: &[T],
    kernels: &[T],
    dims: &Conv2dDims,
    flat: &mut [T],
    stride: usize,
    offset: usize,
    batch: usize,
    need_d_in: bool,
) -> Vec<T> {
    let (rows, cols) = (dims.patch_rows(), dims.patch_cols());
    let out_len = dims.out_channels * rows;
    let kernel_len = dims.out_channels * cols;
    let in_len = dims.in_channels * dims.in_h * dims.in_w;
    let mut d_in = vec![T::ZERO; if need_d_in { batch * in_len } else { 0 }];
    for (ex, (dy, p)) in d_out
        .chunks_exact(out_len)
        .zip(patches.chunks_exact(rows * cols))
        .enumerate()
    {
        let base = ex * stride + offset;
        let row = &mut flat[base..base + kernel_len + dims.out_channels];
        let (d_k, d_b) = row.split_at_mut(kernel_len);
        conv2d_backward_params_on(backend, p, dy, dims, d_k, d_b);
        if need_d_in {
            conv2d_backward_input_into(
                kernels,
                dy,
                dims,
                &mut d_in[ex * in_len..(ex + 1) * in_len],
            );
        }
    }
    d_in
}

/// Batched frozen batch-norm forward `y = γ·(x − μ)·inv_std + β`, with the
/// per-channel statistics pre-folded into `mean`/`inv_std`. Returns
/// `(out, normalized)` — the normalized activations are the backward cache.
pub(crate) fn batchnorm_forward<T: Elem>(
    input: &[T],
    gamma: &[T],
    beta: &[T],
    mean: &[T],
    inv_std: &[T],
    plane: usize,
    batch: usize,
) -> (Vec<T>, Vec<T>) {
    let channels = gamma.len();
    let mut normalized = vec![T::ZERO; input.len()];
    let mut out = vec![T::ZERO; input.len()];
    for ex in 0..batch {
        let base = ex * channels * plane;
        for c in 0..channels {
            let (g, bb, m, is_c) = (gamma[c], beta[c], mean[c], inv_std[c]);
            for p in 0..plane {
                let idx = base + c * plane + p;
                let xhat = (input[idx] - m) * is_c;
                normalized[idx] = xhat;
                out[idx] = g * xhat + bb;
            }
        }
    }
    (out, normalized)
}

/// Batched frozen batch-norm backward: per-example `[dγ | dβ]` accumulated
/// in place at `flat[b·stride + offset..]` (segments zero on entry), and
/// `d_in = dy·γ·inv_std` — the statistics are constants, so the chain rule
/// is linear.
#[allow(clippy::too_many_arguments)]
pub(crate) fn batchnorm_backward<T: Elem>(
    d_out: &[T],
    normalized: &[T],
    gamma: &[T],
    inv_std: &[T],
    plane: usize,
    flat: &mut [T],
    stride: usize,
    offset: usize,
    batch: usize,
) -> Vec<T> {
    let channels = gamma.len();
    let ex_len = channels * plane;
    let mut d_in = vec![T::ZERO; normalized.len()];
    for ex in 0..batch {
        let ex_base = ex * ex_len;
        let base = ex * stride + offset;
        let (d_gamma, d_beta) = flat[base..base + 2 * channels].split_at_mut(channels);
        for c in 0..channels {
            let g = gamma[c];
            let is_c = inv_std[c];
            for p in 0..plane {
                let idx = ex_base + c * plane + p;
                let dy = d_out[idx];
                d_gamma[c] += dy * normalized[idx];
                d_beta[c] += dy;
                d_in[idx] = dy * g * is_c;
            }
        }
    }
    d_in
}

/// Batched ReLU forward. Returns `(out, mask)`; the mask is the backward
/// cache.
pub(crate) fn relu_forward<T: Elem>(input: &[T]) -> (Vec<T>, Vec<bool>) {
    let mask: Vec<bool> = input.iter().map(|&x| x > T::ZERO).collect();
    let out: Vec<T> = input
        .iter()
        .map(|&x| if x > T::ZERO { x } else { T::ZERO })
        .collect();
    (out, mask)
}

/// Batched ReLU backward: gradients pass where the mask is set.
pub(crate) fn relu_backward<T: Elem>(d_out: &[T], mask: &[bool]) -> Vec<T> {
    assert_eq!(d_out.len(), mask.len(), "ReLU backward: length mismatch");
    d_out
        .iter()
        .zip(mask)
        .map(|(&g, &m)| if m { g } else { T::ZERO })
        .collect()
}

/// Batched max-pool forward. Returns `(out, argmax)`; the argmax indices
/// are the backward cache.
pub(crate) fn maxpool_forward<T: Elem>(
    input: &[T],
    dims: &PoolDims,
    batch: usize,
) -> (Vec<T>, Vec<usize>) {
    let ex_len = dims.channels * dims.in_h * dims.in_w;
    let out_len = dims.channels * dims.out_h() * dims.out_w();
    let mut out = Vec::with_capacity(batch * out_len);
    let mut argmax = Vec::with_capacity(batch * out_len);
    for ex in input.chunks_exact(ex_len) {
        let (o, a) = maxpool2d_forward(ex, dims);
        out.extend_from_slice(&o);
        argmax.extend_from_slice(&a);
    }
    (out, argmax)
}

/// Batched max-pool backward: scatter each gradient to its argmax source.
pub(crate) fn maxpool_backward<T: Elem>(d_out: &[T], argmax: &[usize], dims: &PoolDims) -> Vec<T> {
    let out_len = dims.channels * dims.out_h() * dims.out_w();
    let batch = d_out.len() / out_len;
    let mut d_in = Vec::with_capacity(batch * dims.channels * dims.in_h * dims.in_w);
    for (dy, am) in d_out
        .chunks_exact(out_len)
        .zip(argmax.chunks_exact(out_len))
    {
        d_in.extend_from_slice(&maxpool2d_backward(dy, am, dims));
    }
    d_in
}

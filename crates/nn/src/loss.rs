//! Softmax cross-entropy loss.

/// Numerically stable softmax of a logit vector.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let m = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&z| (z - m).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / sum).collect()
}

/// Cross-entropy loss `−ln p_label` of a probability vector.
///
/// # Panics
/// Panics if `label` is out of range.
pub fn cross_entropy_loss(probs: &[f64], label: usize) -> f64 {
    assert!(
        label < probs.len(),
        "cross_entropy_loss: label out of range"
    );
    // Floor avoids −∞ when a probability underflows to exactly zero.
    -probs[label].max(1e-300).ln()
}

/// Fused softmax cross-entropy: returns `(loss, d_logits)` where
/// `d_logits = softmax(logits) − one_hot(label)` — the textbook gradient.
///
/// # Panics
/// Panics if `label` is out of range.
pub fn softmax_cross_entropy(logits: &[f64], label: usize) -> (f64, Vec<f64>) {
    assert!(
        label < logits.len(),
        "softmax_cross_entropy: label out of range"
    );
    let probs = softmax(logits);
    let loss = cross_entropy_loss(&probs, label);
    let mut d = probs;
    d[label] -= 1.0;
    (loss, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_shift_invariance() {
        let a = softmax(&[1.0, 2.0, 3.0]);
        let b = softmax(&[1001.0, 1002.0, 1003.0]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_extreme_logits_no_nan() {
        let p = softmax(&[-1e308, 0.0, 1e3]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_logits_give_ln_k_loss() {
        let (loss, _) = softmax_cross_entropy(&[0.0; 10], 4);
        assert!((loss - 10.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_sums_to_zero() {
        let (_, d) = softmax_cross_entropy(&[0.3, -1.2, 2.0, 0.0], 2);
        assert!(d.iter().sum::<f64>().abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = vec![0.5, -0.3, 1.2, 0.0, -2.0];
        let label = 3;
        let (_, d) = softmax_cross_entropy(&logits, label);
        let h = 1e-7;
        for i in 0..logits.len() {
            let mut p = logits.clone();
            p[i] += h;
            let (lp, _) = softmax_cross_entropy(&p, label);
            let (l0, _) = softmax_cross_entropy(&logits, label);
            let num = (lp - l0) / h;
            assert!((num - d[i]).abs() < 1e-5, "d[{i}]: {num} vs {}", d[i]);
        }
    }

    #[test]
    fn confident_correct_prediction_low_loss() {
        let (loss, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        assert!(loss < 1e-8);
        let (loss_wrong, _) = softmax_cross_entropy(&[10.0, -10.0], 1);
        assert!(loss_wrong > 19.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn label_out_of_range_panics() {
        softmax_cross_entropy(&[0.0, 0.0], 2);
    }
}

//! The paper's two reference architectures (§6.2).

use rand::Rng;

use crate::layers::{BatchNorm2d, Conv2d, Dense, Layer, MaxPool2d};
use crate::model::Sequential;

/// Number of classes in the (synthetic) MNIST task.
pub const MNIST_CLASSES: usize = 10;
/// Number of binary features in the (synthetic) Purchase-100 task.
pub const PURCHASE_FEATURES: usize = 600;
/// Number of classes in the (synthetic) Purchase-100 task.
pub const PURCHASE_CLASSES: usize = 100;

/// The MNIST reference CNN: two 3×3 convolution blocks, each with batch
/// normalisation and 2×2 max pooling, followed by a 10-way softmax readout —
/// the architecture described in the paper's §6.2.
///
/// Input: `[1, 28, 28]`. Spatial trace (valid convolutions):
/// 28 → conv3 → 26 → pool2 → 13 → conv3 → 11 → pool2 → 5; the readout sees
/// 16·5·5 = 400 features.
pub fn mnist_cnn<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(rng, 1, 8, 3)),
        Layer::BatchNorm2d(BatchNorm2d::new(8)),
        Layer::Relu,
        Layer::MaxPool2d(MaxPool2d { pool: 2 }),
        Layer::Conv2d(Conv2d::new(rng, 8, 16, 3)),
        Layer::BatchNorm2d(BatchNorm2d::new(16)),
        Layer::Relu,
        Layer::MaxPool2d(MaxPool2d { pool: 2 }),
        Layer::Flatten,
        Layer::Dense(Dense::new(rng, 16 * 5 * 5, MNIST_CLASSES)),
    ])
}

/// The Purchase-100 reference MLP: 600 → 128 (ReLU) → 100 (softmax in the
/// loss), as described in the paper's §6.2.
pub fn purchase_mlp<R: Rng + ?Sized>(rng: &mut R) -> Sequential {
    Sequential::new(vec![
        Layer::Dense(Dense::new(rng, PURCHASE_FEATURES, 128)),
        Layer::Relu,
        Layer::Dense(Dense::new(rng, 128, PURCHASE_CLASSES)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpaudit_math::seeded_rng;
    use dpaudit_tensor::Tensor;

    #[test]
    fn mnist_cnn_shapes() {
        let m = mnist_cnn(&mut seeded_rng(1));
        let x = Tensor::zeros(&[1, 28, 28]);
        let logits = m.forward(&x);
        assert_eq!(logits.shape(), &[MNIST_CLASSES]);
        // conv1: 8·1·9+8 = 80; bn1: 16; conv2: 16·8·9+16 = 1168; bn2: 32;
        // dense: 400·10+10 = 4010 → total 5306.
        assert_eq!(m.param_count(), 5306);
    }

    #[test]
    fn purchase_mlp_shapes() {
        let m = purchase_mlp(&mut seeded_rng(2));
        let x = Tensor::zeros(&[PURCHASE_FEATURES]);
        let logits = m.forward(&x);
        assert_eq!(logits.shape(), &[PURCHASE_CLASSES]);
        // 600·128+128 + 128·100+100 = 76928 + 12900 = 89828.
        assert_eq!(m.param_count(), 89_828);
    }

    #[test]
    fn per_example_grad_dimensions_match() {
        let m = mnist_cnn(&mut seeded_rng(3));
        let x = Tensor::full(&[1, 28, 28], 0.3);
        let (loss, g) = m.per_example_grad(&x, 7);
        assert!(loss.is_finite());
        assert_eq!(g.len(), m.param_count());
        assert!(dpaudit_math::l2_norm(&g) > 0.0);
    }
}

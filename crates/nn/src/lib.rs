#![warn(missing_docs)]
//! From-scratch neural networks with per-example gradients.
//!
//! DPSGD (Abadi et al., CCS 2016) — the mechanism audited throughout the
//! paper — needs the gradient of the loss *per training example* so it can be
//! clipped to the norm `C` before aggregation and perturbation. This crate
//! implements the two reference architectures of the paper's §6.2 (a 2-conv
//! CNN for 28×28 images and a 600→128→100 MLP for purchase baskets) plus the
//! layers they are made of, with exact backpropagation returning gradients as
//! flat `Vec<f64>` aligned with a deterministic parameter layout.
//!
//! Batch normalisation is implemented with *frozen statistics*: running
//! statistics are refreshed from each clean batch (see
//! [`Sequential::update_norm_stats`]) and the backward pass treats them as
//! constants, which keeps per-example gradients well defined — the standard
//! workaround in DP deep-learning stacks.

pub mod batch32;
pub(crate) mod batched;
pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod zoo;

pub use batch32::SequentialF32;
pub use init::glorot_uniform;
pub use layers::{BatchCache, BatchNorm2d, Cache, Conv2d, Dense, Layer, MaxPool2d};
pub use loss::{cross_entropy_loss, softmax, softmax_cross_entropy};
pub use model::Sequential;
pub use zoo::{mnist_cnn, purchase_mlp, MNIST_CLASSES, PURCHASE_CLASSES, PURCHASE_FEATURES};

//! Sequential models with flat parameter vectors and per-example gradients.

use dpaudit_tensor::{Backend, Tensor};
use serde::{Deserialize, Serialize};

use crate::layers::{BatchCache, Cache, Layer};
use crate::loss::softmax_cross_entropy;

/// A feed-forward stack of [`Layer`]s.
///
/// Parameters are exposed as one flat `Vec<f64>` in layer order (each layer's
/// canonical internal order), which is the representation DPSGD clips and
/// perturbs and the DI adversary reasons about: the mechanism output is a
/// vector in R^d with d = [`Sequential::param_count`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sequential {
    /// The layers, applied in order.
    pub layers: Vec<Layer>,
}

impl Sequential {
    /// Build from a layer list.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers }
    }

    /// Total number of learnable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Per-layer parameter counts in flat-vector order, with zero-parameter
    /// layers (ReLU, pooling, flatten) omitted. This is the segmentation
    /// per-layer gradient clipping operates on.
    pub fn param_layout(&self) -> Vec<usize> {
        self.layers
            .iter()
            .map(Layer::param_count)
            .filter(|&n| n > 0)
            .collect()
    }

    /// Snapshot all parameters as a flat vector.
    pub fn params(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            layer.append_params(&mut out);
        }
        out
    }

    /// Overwrite all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `params.len() != self.param_count()`.
    pub fn set_params(&mut self, params: &[f64]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "set_params: expected {} values, got {}",
            self.param_count(),
            params.len()
        );
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.load_params(&params[off..]);
        }
    }

    /// Gradient-descent step `θ ← θ − lr·grad` over the flat layout.
    ///
    /// # Panics
    /// Panics if `grad.len() != self.param_count()`.
    pub fn gradient_step(&mut self, grad: &[f64], lr: f64) {
        assert_eq!(
            grad.len(),
            self.param_count(),
            "gradient_step: expected {} values, got {}",
            self.param_count(),
            grad.len()
        );
        let mut off = 0;
        for layer in &mut self.layers {
            off += layer.apply_step(&grad[off..], lr);
        }
    }

    /// Plain forward pass (no caches), producing logits.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut h = x.clone();
        for layer in &self.layers {
            let (out, _) = layer.forward(&h);
            h = out;
        }
        h
    }

    /// Forward pass retaining per-layer caches for backpropagation.
    pub fn forward_cached(&self, x: &Tensor) -> (Tensor, Vec<Cache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward(&h);
            caches.push(cache);
            h = out;
        }
        (h, caches)
    }

    /// Backpropagate `d_logits` through the cached forward pass, returning
    /// the flat parameter gradient (same layout as [`Sequential::params`]).
    pub fn backward(&self, caches: &[Cache], d_logits: Tensor) -> Vec<f64> {
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "backward: cache count mismatch"
        );
        // Collect per-layer gradients in reverse, then flatten forward.
        let mut per_layer: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        let mut d = d_logits;
        for (layer, cache) in self.layers.iter().zip(caches).rev() {
            let (d_in, d_params) = layer.backward(&d, cache);
            per_layer.push(d_params);
            d = d_in;
        }
        per_layer.reverse();
        let mut flat = Vec::with_capacity(self.param_count());
        for g in per_layer {
            flat.extend(g);
        }
        flat
    }

    /// Plain batched forward pass (no caches) over a `[B, ...]` batch
    /// tensor, producing `[B, classes]` logits.
    pub fn forward_batch(&self, xs: &Tensor) -> Tensor {
        self.forward_batch_on(Backend::native(), xs)
    }

    /// [`Sequential::forward_batch`] with the gemms routed through a
    /// [`Backend`] handle.
    pub fn forward_batch_on(&self, backend: Backend, xs: &Tensor) -> Tensor {
        let mut h = xs.clone();
        for layer in &self.layers {
            let (out, _) = layer.forward_batch_on(backend, &h);
            h = out;
        }
        h
    }

    /// Batched forward pass retaining per-layer caches for
    /// [`Sequential::backward_batch`].
    pub fn forward_batch_cached(&self, xs: &Tensor) -> (Tensor, Vec<BatchCache>) {
        self.forward_batch_cached_on(Backend::native(), xs)
    }

    /// [`Sequential::forward_batch_cached`] with the gemms routed through a
    /// [`Backend`] handle.
    pub fn forward_batch_cached_on(
        &self,
        backend: Backend,
        xs: &Tensor,
    ) -> (Tensor, Vec<BatchCache>) {
        let mut caches = Vec::with_capacity(self.layers.len());
        let mut h = xs.clone();
        for layer in &self.layers {
            let (out, cache) = layer.forward_batch_on(backend, &h);
            caches.push(cache);
            h = out;
        }
        (h, caches)
    }

    /// Backpropagate per-example logit gradients (`[B, classes]`) through a
    /// cached batched forward pass, returning the `[B, param_count]` tensor
    /// of per-example flat parameter gradients — row `b` is exactly what
    /// [`Sequential::per_example_grad`] would return for example `b`.
    pub fn backward_batch(&self, caches: &[BatchCache], d_logits: Tensor) -> Tensor {
        self.backward_batch_on(Backend::native(), caches, d_logits)
    }

    /// [`Sequential::backward_batch`] with the gemms routed through a
    /// [`Backend`] handle.
    pub fn backward_batch_on(
        &self,
        backend: Backend,
        caches: &[BatchCache],
        d_logits: Tensor,
    ) -> Tensor {
        assert_eq!(
            caches.len(),
            self.layers.len(),
            "backward_batch: cache count mismatch"
        );
        let batch = d_logits.shape()[0];
        let dim = self.param_count();
        // Each layer writes its per-example gradient segment straight into
        // the flat `[B, dim]` buffer — no per-layer staging copy.
        let mut flat = vec![0.0; batch * dim];
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.param_count();
        }
        let mut d = d_logits;
        for ((layer, cache), offset) in self.layers.iter().zip(caches).zip(offsets).rev() {
            d = layer.backward_batch_on(backend, &d, cache, &mut flat, dim, offset);
        }
        Tensor::from_vec(&[batch, dim], flat)
    }

    /// Losses and per-example flat parameter gradients for a labelled batch,
    /// computed in one batched forward/backward pass. Returns the per-example
    /// losses and a `[B, param_count]` gradient tensor.
    ///
    /// Bit-identical to calling [`Sequential::per_example_grad_scalar`] on
    /// each example — the batched layers replicate the scalar accumulation
    /// order exactly.
    ///
    /// # Panics
    /// Panics on an empty batch or a length mismatch.
    pub fn per_example_grads(&self, xs: &[Tensor], labels: &[usize]) -> (Vec<f64>, Tensor) {
        self.per_example_grads_on(Backend::native(), xs, labels)
    }

    /// [`Sequential::per_example_grads`] with the gemms routed through a
    /// [`Backend`] handle. On [`Backend::native`] the two are bit-identical;
    /// other backends are tolerance-equivalent only.
    pub fn per_example_grads_on(
        &self,
        backend: Backend,
        xs: &[Tensor],
        labels: &[usize],
    ) -> (Vec<f64>, Tensor) {
        assert_eq!(xs.len(), labels.len(), "per_example_grads: length mismatch");
        let batch = Tensor::stack(xs);
        let (logits, caches) = self.forward_batch_cached_on(backend, &batch);
        let classes = logits.shape()[1];
        let mut losses = Vec::with_capacity(xs.len());
        let mut d_logits = Vec::with_capacity(logits.len());
        for (row, &label) in logits.data().chunks_exact(classes).zip(labels) {
            let (loss, d_row) = softmax_cross_entropy(row, label);
            losses.push(loss);
            d_logits.extend_from_slice(&d_row);
        }
        let grads = self.backward_batch_on(
            backend,
            &caches,
            Tensor::from_vec(&[xs.len(), classes], d_logits),
        );
        (losses, grads)
    }

    /// Loss and flat parameter gradient for a single labelled example —
    /// the per-example gradient DPSGD clips. Runs as the B=1 case of the
    /// batched pipeline.
    pub fn per_example_grad(&self, x: &Tensor, label: usize) -> (f64, Vec<f64>) {
        let (losses, grads) = self.per_example_grads(std::slice::from_ref(x), &[label]);
        (losses[0], grads.into_vec())
    }

    /// [`Sequential::per_example_grad`] with the gemms routed through a
    /// [`Backend`] handle.
    pub fn per_example_grad_on(
        &self,
        backend: Backend,
        x: &Tensor,
        label: usize,
    ) -> (f64, Vec<f64>) {
        let (losses, grads) = self.per_example_grads_on(backend, std::slice::from_ref(x), &[label]);
        (losses[0], grads.into_vec())
    }

    /// Single-example gradient on the original example-at-a-time path —
    /// kept as the property-test oracle for the batched pipeline.
    pub fn per_example_grad_scalar(&self, x: &Tensor, label: usize) -> (f64, Vec<f64>) {
        let (logits, caches) = self.forward_cached(x);
        let (loss, d_logits) = softmax_cross_entropy(logits.data(), label);
        let shape = [logits.len()];
        let grad = self.backward(&caches, Tensor::from_vec(&shape, d_logits));
        (loss, grad)
    }

    /// Average cross-entropy loss over a labelled set.
    pub fn mean_loss(&self, xs: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(xs.len(), labels.len(), "mean_loss: length mismatch");
        assert!(!xs.is_empty(), "mean_loss: empty set");
        let total: f64 = xs
            .iter()
            .zip(labels)
            .map(|(x, &y)| {
                let logits = self.forward(x);
                let (loss, _) = softmax_cross_entropy(logits.data(), y);
                loss
            })
            .sum();
        total / xs.len() as f64
    }

    /// Most likely class for one example.
    pub fn predict(&self, x: &Tensor) -> usize {
        let logits = self.forward(x);
        logits
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN logit"))
            .map(|(i, _)| i)
            .expect("predict: empty logits")
    }

    /// Classification accuracy over a labelled set.
    pub fn accuracy(&self, xs: &[Tensor], labels: &[usize]) -> f64 {
        assert_eq!(xs.len(), labels.len(), "accuracy: length mismatch");
        assert!(!xs.is_empty(), "accuracy: empty set");
        let correct = xs
            .iter()
            .zip(labels)
            .filter(|(x, &y)| self.predict(x) == y)
            .count();
        correct as f64 / xs.len() as f64
    }

    /// Refresh the running statistics of every [`Layer::BatchNorm2d`] from a
    /// clean forward pass over `batch` (the whole training batch), layer by
    /// layer, as TF/Keras does in training mode.
    ///
    /// Must be called before computing per-example gradients for a step so
    /// that all examples are normalised identically (frozen-stats batch
    /// norm; see the crate docs).
    pub fn update_norm_stats(&mut self, batch: &[Tensor]) {
        if batch.is_empty() {
            return;
        }
        let mut activations: Vec<Tensor> = batch.to_vec();
        for layer in &mut self.layers {
            if let Layer::BatchNorm2d(bn) = layer {
                // Per-channel mean/var across the batch and spatial dims.
                let shape = activations[0].shape().to_vec();
                assert_eq!(
                    shape.len(),
                    3,
                    "update_norm_stats: batch norm input must be [C,H,W]"
                );
                let channels = shape[0];
                let plane = shape[1] * shape[2];
                let count = (activations.len() * plane) as f64;
                let mut mean = vec![0.0; channels];
                let mut var = vec![0.0; channels];
                #[allow(clippy::needless_range_loop)] // c addresses offsets too
                for a in &activations {
                    for c in 0..channels {
                        for p in 0..plane {
                            mean[c] += a.data()[c * plane + p];
                        }
                    }
                }
                for m in &mut mean {
                    *m /= count;
                }
                for a in &activations {
                    for c in 0..channels {
                        for p in 0..plane {
                            let d = a.data()[c * plane + p] - mean[c];
                            var[c] += d * d;
                        }
                    }
                }
                for v in &mut var {
                    *v /= count;
                }
                bn.update_stats(&mean, &var);
            }
            // Advance the whole batch through this layer (with the *updated*
            // stats for batch-norm layers).
            let frozen = &*layer;
            activations = activations.iter().map(|a| frozen.forward(a).0).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Dense, MaxPool2d};
    use dpaudit_math::seeded_rng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 6, 5)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 5, 3)),
        ])
    }

    fn tiny_cnn(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(&mut rng, 1, 2, 3)),
            Layer::BatchNorm2d(BatchNorm2d::new(2)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { pool: 2 }),
            Layer::Flatten,
            Layer::Dense(Dense::new(&mut rng, 2 * 3 * 3, 3)),
        ])
    }

    fn example(seed: u64, shape: &[usize]) -> Tensor {
        let mut rng = seeded_rng(seed);
        let n: usize = shape.iter().product();
        let data: Vec<f64> = (0..n)
            .map(|_| rand::Rng::gen_range(&mut rng, -1.0..1.0))
            .collect();
        Tensor::from_vec(shape, data)
    }

    #[test]
    fn param_layout_segments_sum_to_total() {
        let m = tiny_cnn(20);
        let layout = m.param_layout();
        // conv, batchnorm, dense carry parameters; relu/pool/flatten do not.
        assert_eq!(layout.len(), 3);
        assert_eq!(layout.iter().sum::<usize>(), m.param_count());
    }

    #[test]
    fn params_round_trip() {
        let mut m = tiny_mlp(1);
        let p = m.params();
        assert_eq!(p.len(), m.param_count());
        assert_eq!(p.len(), 6 * 5 + 5 + 5 * 3 + 3);
        let doubled: Vec<f64> = p.iter().map(|x| x * 2.0).collect();
        m.set_params(&doubled);
        assert_eq!(m.params(), doubled);
    }

    #[test]
    fn gradient_step_direction() {
        let mut m = tiny_mlp(2);
        let before = m.params();
        let grad: Vec<f64> = (0..before.len()).map(|i| (i % 3) as f64 - 1.0).collect();
        m.gradient_step(&grad, 0.5);
        let after = m.params();
        for i in 0..before.len() {
            assert!((after[i] - (before[i] - 0.5 * grad[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn mlp_gradient_matches_finite_differences() {
        let m = tiny_mlp(3);
        let x = example(10, &[6]);
        let label = 1;
        let (_, grad) = m.per_example_grad(&x, label);
        assert_eq!(grad.len(), m.param_count());
        let base = m.params();
        let h = 1e-6;
        let loss_at = |params: &[f64]| {
            let mut mm = m.clone();
            mm.set_params(params);
            let logits = mm.forward(&x);
            softmax_cross_entropy(logits.data(), label).0
        };
        let l0 = loss_at(&base);
        // Check a spread of parameter coordinates across all layers.
        for idx in [0usize, 7, 17, 31, 35, 40, base.len() - 1] {
            let mut p = base.clone();
            p[idx] += h;
            let num = (loss_at(&p) - l0) / h;
            assert!(
                (num - grad[idx]).abs() < 1e-4,
                "grad[{idx}]: fd {num} vs bp {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn cnn_gradient_matches_finite_differences() {
        let mut m = tiny_cnn(4);
        let x = example(11, &[1, 8, 8]);
        // Give batch norm non-trivial statistics first.
        m.update_norm_stats(&[x.clone(), example(12, &[1, 8, 8])]);
        let label = 2;
        let (_, grad) = m.per_example_grad(&x, label);
        assert_eq!(grad.len(), m.param_count());
        let base = m.params();
        let h = 1e-6;
        let loss_at = |params: &[f64]| {
            let mut mm = m.clone();
            mm.set_params(params);
            let logits = mm.forward(&x);
            softmax_cross_entropy(logits.data(), label).0
        };
        let l0 = loss_at(&base);
        let step = base.len() / 11;
        for k in 0..11 {
            let idx = k * step;
            let mut p = base.clone();
            p[idx] += h;
            let num = (loss_at(&p) - l0) / h;
            assert!(
                (num - grad[idx]).abs() < 1e-4,
                "grad[{idx}]: fd {num} vs bp {}",
                grad[idx]
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_tiny_problem() {
        let mut m = tiny_mlp(5);
        let xs: Vec<Tensor> = (0..6).map(|i| example(100 + i, &[6])).collect();
        let ys: Vec<usize> = (0..6).map(|i| i % 3).collect();
        let initial = m.mean_loss(&xs, &ys);
        for _ in 0..200 {
            let mut grad = vec![0.0; m.param_count()];
            for (x, &y) in xs.iter().zip(&ys) {
                let (_, g) = m.per_example_grad(x, y);
                for (a, b) in grad.iter_mut().zip(&g) {
                    *a += b;
                }
            }
            for g in &mut grad {
                *g /= xs.len() as f64;
            }
            m.gradient_step(&grad, 0.5);
        }
        let final_loss = m.mean_loss(&xs, &ys);
        assert!(
            final_loss < initial * 0.5,
            "loss did not drop: {initial} -> {final_loss}"
        );
        assert!(m.accuracy(&xs, &ys) >= 0.5);
    }

    #[test]
    fn update_norm_stats_changes_running_stats() {
        let mut m = tiny_cnn(6);
        let stats_before: Vec<(Vec<f64>, Vec<f64>)> = m
            .layers
            .iter()
            .filter_map(|l| match l {
                Layer::BatchNorm2d(b) => Some((b.running_mean.clone(), b.running_var.clone())),
                _ => None,
            })
            .collect();
        m.update_norm_stats(&[example(20, &[1, 8, 8]), example(21, &[1, 8, 8])]);
        let stats_after: Vec<(Vec<f64>, Vec<f64>)> = m
            .layers
            .iter()
            .filter_map(|l| match l {
                Layer::BatchNorm2d(b) => Some((b.running_mean.clone(), b.running_var.clone())),
                _ => None,
            })
            .collect();
        assert_eq!(stats_before.len(), 1);
        assert_ne!(stats_before, stats_after);
    }

    #[test]
    fn update_norm_stats_empty_batch_is_noop() {
        let mut m = tiny_cnn(7);
        let before = m.params();
        m.update_norm_stats(&[]);
        assert_eq!(m.params(), before);
    }

    #[test]
    fn predict_returns_argmax_class() {
        let m = tiny_mlp(8);
        let x = example(30, &[6]);
        let logits = m.forward(&x);
        let pred = m.predict(&x);
        let max = logits
            .data()
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(logits.data()[pred], max);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn set_params_length_checked() {
        tiny_mlp(9).set_params(&[0.0]);
    }

    #[test]
    fn identical_seeds_build_identical_models() {
        let a = tiny_cnn(42);
        let b = tiny_cnn(42);
        assert_eq!(a.params(), b.params());
    }
}

//! f32 storage mode for the batched per-example gradient pipeline.
//!
//! [`SequentialF32`] is a single-precision shadow of a [`Sequential`] model:
//! parameters are narrowed to f32 once per construction, the batched
//! forward/backward passes run entirely in f32 (halving the memory traffic
//! of the `[B, param]` gradient buffers and activations, and doubling SIMD
//! lane width), and the per-example gradients come back as one flat
//! `[B, param_count]` f32 buffer. Losses — and the softmax that produces the
//! logit gradients — are computed in f64 from widened logits, and the DPSGD
//! clip loop widens each gradient value back to f64 on the fly as it flows
//! into the fixed-order `CLIP_CHUNK` reduction, so the *accumulation* stays
//! f64 end to end; only
//! the per-example storage is single precision. f32 mode is therefore a
//! tolerance-equivalent of the f64 oracle, not a bit-identical one, and is
//! opt-in per run.

use dpaudit_tensor::{Backend, Conv2dDims, PoolDims, Tensor};

use crate::batched;
use crate::layers::Layer;
use crate::loss::softmax_cross_entropy;
use crate::model::Sequential;

/// One layer of the f32 shadow model. Frozen state (batch-norm statistics)
/// is pre-folded: only what the forward/backward passes touch is stored.
enum LayerF32 {
    Dense {
        /// Row-major `[out, in]` weights.
        weight: Vec<f32>,
        bias: Vec<f32>,
        in_f: usize,
        out_f: usize,
    },
    Conv2d {
        /// Flat `[oc, ic, kh, kw]` kernels.
        kernels: Vec<f32>,
        bias: Vec<f32>,
        out_channels: usize,
        in_channels: usize,
        k_h: usize,
        k_w: usize,
    },
    BatchNorm2d {
        gamma: Vec<f32>,
        beta: Vec<f32>,
        mean: Vec<f32>,
        /// `1 / sqrt(var + eps)`, computed in f64 then narrowed once.
        inv_std: Vec<f32>,
    },
    Relu,
    MaxPool2d {
        pool: usize,
    },
    Flatten,
}

impl LayerF32 {
    fn param_count(&self) -> usize {
        match self {
            LayerF32::Dense { weight, bias, .. } => weight.len() + bias.len(),
            LayerF32::Conv2d { kernels, bias, .. } => kernels.len() + bias.len(),
            LayerF32::BatchNorm2d { gamma, beta, .. } => gamma.len() + beta.len(),
            LayerF32::Relu | LayerF32::MaxPool2d { .. } | LayerF32::Flatten => 0,
        }
    }
}

/// Forward intermediates of one f32 layer, mirroring `BatchCache`.
enum CacheF32 {
    Dense { input: Vec<f32> },
    Conv2d { patches: Vec<f32>, dims: Conv2dDims },
    BatchNorm2d { normalized: Vec<f32>, plane: usize },
    Relu { mask: Vec<bool> },
    MaxPool2d { argmax: Vec<usize>, dims: PoolDims },
    Flatten,
}

fn narrow(v: &[f64]) -> Vec<f32> {
    v.iter().map(|&x| x as f32).collect()
}

/// Single-precision shadow of a [`Sequential`] model for the f32 storage
/// mode of the batched gradient pipeline.
///
/// Built fresh from the current f64 parameters each step (narrowing is
/// cheap next to a train step); produces per-example gradients in one flat
/// `[B, param_count]` f32 buffer with exactly the layout of
/// [`Sequential::per_example_grads`].
pub struct SequentialF32 {
    layers: Vec<LayerF32>,
    dim: usize,
}

impl SequentialF32 {
    /// Narrow a model's parameters (and frozen batch-norm statistics) to f32.
    pub fn from_model(model: &Sequential) -> Self {
        let layers: Vec<LayerF32> = model
            .layers
            .iter()
            .map(|layer| match layer {
                Layer::Dense(d) => LayerF32::Dense {
                    weight: narrow(d.weight.data()),
                    bias: narrow(d.bias.data()),
                    in_f: d.weight.shape()[1],
                    out_f: d.weight.shape()[0],
                },
                Layer::Conv2d(c) => {
                    let ks = c.kernels.shape();
                    LayerF32::Conv2d {
                        kernels: narrow(c.kernels.data()),
                        bias: narrow(c.bias.data()),
                        out_channels: ks[0],
                        in_channels: ks[1],
                        k_h: ks[2],
                        k_w: ks[3],
                    }
                }
                Layer::BatchNorm2d(b) => LayerF32::BatchNorm2d {
                    gamma: narrow(b.gamma.data()),
                    beta: narrow(b.beta.data()),
                    mean: narrow(&b.running_mean),
                    // The rsqrt is done in f64 so the narrowed value is the
                    // correctly rounded f32 of the f64 statistic.
                    inv_std: b
                        .running_var
                        .iter()
                        .map(|&v| (1.0 / (v + b.eps).sqrt()) as f32)
                        .collect(),
                },
                Layer::Relu => LayerF32::Relu,
                Layer::MaxPool2d(p) => LayerF32::MaxPool2d { pool: p.pool },
                Layer::Flatten => LayerF32::Flatten,
            })
            .collect();
        let dim = layers.iter().map(LayerF32::param_count).sum();
        Self { layers, dim }
    }

    /// Total number of learnable parameters (matches the f64 model).
    pub fn param_count(&self) -> usize {
        self.dim
    }

    /// Losses and per-example flat parameter gradients for a labelled batch.
    ///
    /// Returns the per-example losses (f64 — the softmax/cross-entropy runs
    /// in f64 on widened logits) and the `[B, param_count]` f32 gradient
    /// buffer, row `b` in the same layout as [`Sequential::per_example_grads`].
    ///
    /// # Panics
    /// Panics on an empty batch or a length mismatch.
    pub fn per_example_grads(&self, xs: &[Tensor], labels: &[usize]) -> (Vec<f64>, Vec<f32>) {
        self.per_example_grads_on(Backend::native(), xs, labels)
    }

    /// [`SequentialF32::per_example_grads`] with the gemms routed through a
    /// [`Backend`] handle.
    pub fn per_example_grads_on(
        &self,
        backend: Backend,
        xs: &[Tensor],
        labels: &[usize],
    ) -> (Vec<f64>, Vec<f32>) {
        assert_eq!(xs.len(), labels.len(), "per_example_grads: length mismatch");
        assert!(!xs.is_empty(), "per_example_grads: empty batch");
        let batch = xs.len();
        let mut shape = xs[0].shape().to_vec();
        let ex_len: usize = shape.iter().product();
        let mut h = Vec::with_capacity(batch * ex_len);
        for x in xs {
            assert_eq!(x.shape(), &shape[..], "per_example_grads: ragged batch");
            h.extend(x.data().iter().map(|&v| v as f32));
        }

        // Forward, recording caches and the evolving per-example shape.
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, out_shape, cache) = layer_forward(backend, layer, &h, &shape, batch);
            caches.push(cache);
            h = out;
            shape = out_shape;
        }

        // Loss head in f64: widen each logit row, softmax + cross-entropy,
        // narrow the gradient back.
        let classes = *shape.last().expect("per_example_grads: scalar logits");
        assert_eq!(shape.len(), 1, "per_example_grads: logits must be flat");
        let mut losses = Vec::with_capacity(batch);
        let mut d: Vec<f32> = Vec::with_capacity(batch * classes);
        let mut row64 = vec![0.0f64; classes];
        for (row, &label) in h.chunks_exact(classes).zip(labels) {
            for (wide, &v) in row64.iter_mut().zip(row) {
                *wide = f64::from(v);
            }
            let (loss, d_row) = softmax_cross_entropy(&row64, label);
            losses.push(loss);
            d.extend(d_row.iter().map(|&v| v as f32));
        }

        // Backward, each layer writing its per-example segments straight
        // into the flat [B, dim] buffer.
        let mut flat = vec![0.0f32; batch * self.dim];
        let mut offsets = Vec::with_capacity(self.layers.len());
        let mut off = 0;
        for layer in &self.layers {
            offsets.push(off);
            off += layer.param_count();
        }
        for (idx, ((layer, cache), offset)) in self
            .layers
            .iter()
            .zip(&caches)
            .zip(offsets)
            .enumerate()
            .rev()
        {
            // The first layer's input gradient is discarded (the input is
            // data, not a parameter), so its backward gemm is skipped.
            d = layer_backward(
                backend,
                layer,
                cache,
                &d,
                &mut flat,
                self.dim,
                offset,
                batch,
                idx > 0,
            );
        }
        (losses, flat)
    }
}

/// Forward one layer over the flat `[B, ...]` f32 batch buffer. Returns the
/// output buffer, the new per-example shape, and the backward cache. The
/// arithmetic is the shared element-generic kernels of [`batched`] — the
/// same code path as the f64 pipeline, instantiated at f32.
fn layer_forward(
    backend: Backend,
    layer: &LayerF32,
    input: &[f32],
    shape: &[usize],
    batch: usize,
) -> (Vec<f32>, Vec<usize>, CacheF32) {
    match layer {
        LayerF32::Dense {
            weight,
            bias,
            in_f,
            out_f,
        } => {
            let (n, m) = (*in_f, *out_f);
            assert_eq!(shape, [n], "DenseF32: input must be [{n}], got {shape:?}");
            let y = batched::dense_forward(backend, input, weight, bias, batch, n, m);
            (
                y,
                vec![m],
                CacheF32::Dense {
                    input: input.to_vec(),
                },
            )
        }
        LayerF32::Conv2d {
            kernels,
            bias,
            out_channels,
            in_channels,
            k_h,
            k_w,
        } => {
            assert_eq!(shape.len(), 3, "Conv2dF32: input must be [C,H,W]");
            assert_eq!(shape[0], *in_channels, "Conv2dF32: channel mismatch");
            let dims = Conv2dDims {
                in_channels: *in_channels,
                out_channels: *out_channels,
                in_h: shape[1],
                in_w: shape[2],
                k_h: *k_h,
                k_w: *k_w,
            };
            let (out, patches) = batched::conv_forward(backend, input, kernels, bias, &dims, batch);
            (
                out,
                vec![dims.out_channels, dims.out_h(), dims.out_w()],
                CacheF32::Conv2d { patches, dims },
            )
        }
        LayerF32::BatchNorm2d {
            gamma,
            beta,
            mean,
            inv_std,
        } => {
            assert_eq!(shape.len(), 3, "BatchNorm2dF32: input must be [C,H,W]");
            assert_eq!(shape[0], gamma.len(), "BatchNorm2dF32: channel mismatch");
            let plane = shape[1] * shape[2];
            let (out, normalized) =
                batched::batchnorm_forward(input, gamma, beta, mean, inv_std, plane, batch);
            (
                out,
                shape.to_vec(),
                CacheF32::BatchNorm2d { normalized, plane },
            )
        }
        LayerF32::Relu => {
            let (out, mask) = batched::relu_forward(input);
            (out, shape.to_vec(), CacheF32::Relu { mask })
        }
        LayerF32::MaxPool2d { pool } => {
            assert_eq!(shape.len(), 3, "MaxPool2dF32: input must be [C,H,W]");
            let dims = PoolDims {
                channels: shape[0],
                in_h: shape[1],
                in_w: shape[2],
                pool_h: *pool,
                pool_w: *pool,
            };
            let (out, argmax) = batched::maxpool_forward(input, &dims, batch);
            (
                out,
                vec![dims.channels, dims.out_h(), dims.out_w()],
                CacheF32::MaxPool2d { argmax, dims },
            )
        }
        LayerF32::Flatten => {
            let n: usize = shape.iter().product();
            (input.to_vec(), vec![n], CacheF32::Flatten)
        }
    }
}

/// Backward one layer: consume `d_out` (`[B, out...]` flat), write this
/// layer's per-example parameter gradients at `flat[b*stride + offset..]`
/// (segments are zero on entry), and return `d_input`. With `need_d_in`
/// false (the first layer — the input is data, not a parameter) the Dense
/// and Conv2d arms skip their input-gradient gemm and return an empty
/// buffer.
#[allow(clippy::too_many_arguments)]
fn layer_backward(
    backend: Backend,
    layer: &LayerF32,
    cache: &CacheF32,
    d_out: &[f32],
    flat: &mut [f32],
    stride: usize,
    offset: usize,
    batch: usize,
    need_d_in: bool,
) -> Vec<f32> {
    match (layer, cache) {
        (
            LayerF32::Dense {
                weight,
                in_f,
                out_f,
                ..
            },
            CacheF32::Dense { input },
        ) => batched::dense_backward(
            backend, d_out, input, weight, flat, stride, offset, batch, *in_f, *out_f, need_d_in,
        ),
        (LayerF32::Conv2d { kernels, .. }, CacheF32::Conv2d { patches, dims }) => {
            batched::conv_backward(
                backend, d_out, patches, kernels, dims, flat, stride, offset, batch, need_d_in,
            )
        }
        (
            LayerF32::BatchNorm2d { gamma, inv_std, .. },
            CacheF32::BatchNorm2d { normalized, plane },
        ) => batched::batchnorm_backward(
            d_out, normalized, gamma, inv_std, *plane, flat, stride, offset, batch,
        ),
        (LayerF32::Relu, CacheF32::Relu { mask }) => batched::relu_backward(d_out, mask),
        (LayerF32::MaxPool2d { .. }, CacheF32::MaxPool2d { argmax, dims }) => {
            batched::maxpool_backward(d_out, argmax, dims)
        }
        (LayerF32::Flatten, CacheF32::Flatten) => d_out.to_vec(),
        _ => panic!("SequentialF32: cache does not match layer kind"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm2d, Conv2d, Dense, MaxPool2d};
    use dpaudit_math::seeded_rng;
    use rand::Rng;

    fn tiny_mlp(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 6, 5)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 5, 3)),
        ])
    }

    fn tiny_cnn(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(&mut rng, 1, 2, 3)),
            Layer::BatchNorm2d(BatchNorm2d::new(2)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { pool: 2 }),
            Layer::Flatten,
            Layer::Dense(Dense::new(&mut rng, 2 * 3 * 3, 3)),
        ])
    }

    fn example(seed: u64, shape: &[usize]) -> Tensor {
        let mut rng = seeded_rng(seed);
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    /// The f32 pipeline must agree with the f64 oracle within a tolerance
    /// band scaled to single-precision accumulation depth.
    fn assert_grads_close(model: &Sequential, xs: &[Tensor], labels: &[usize]) {
        let (losses64, grads64) = model.per_example_grads(xs, labels);
        let shadow = SequentialF32::from_model(model);
        assert_eq!(shadow.param_count(), model.param_count());
        let (losses32, grads32) = shadow.per_example_grads(xs, labels);
        for (a, b) in losses64.iter().zip(&losses32) {
            assert!((a - b).abs() < 1e-4, "loss differs: {a} vs {b}");
        }
        assert_eq!(grads32.len(), grads64.len());
        for (i, (g64, g32)) in grads64.data().iter().zip(&grads32).enumerate() {
            let diff = (g64 - f64::from(*g32)).abs();
            let tol = 1e-4 + 1e-3 * g64.abs();
            assert!(diff < tol, "grad[{i}] differs: {g64} vs {g32}");
        }
    }

    #[test]
    fn mlp_f32_grads_match_f64_within_tolerance() {
        let model = tiny_mlp(3);
        let xs: Vec<Tensor> = (0..7).map(|i| example(100 + i, &[6])).collect();
        let labels = vec![0, 1, 2, 0, 1, 2, 0];
        assert_grads_close(&model, &xs, &labels);
    }

    #[test]
    fn cnn_f32_grads_match_f64_within_tolerance() {
        let model = tiny_cnn(5);
        let xs: Vec<Tensor> = (0..5).map(|i| example(200 + i, &[1, 8, 8])).collect();
        let labels = vec![2, 0, 1, 1, 2];
        assert_grads_close(&model, &xs, &labels);
    }

    /// Layer-pipeline-level backend equivalence: the blas backend's
    /// per-example gradients must track the native oracle within a
    /// reassociation-scale tolerance, in both precisions.
    #[cfg(feature = "blas")]
    #[test]
    fn blas_backend_grads_track_native_within_tolerance() {
        let blas = Backend::resolve("blas").unwrap();
        let model = tiny_cnn(5);
        let xs: Vec<Tensor> = (0..5).map(|i| example(200 + i, &[1, 8, 8])).collect();
        let labels = vec![2, 0, 1, 1, 2];

        let (l_native, g_native) = model.per_example_grads(&xs, &labels);
        let (l_blas, g_blas) = model.per_example_grads_on(blas, &xs, &labels);
        for (a, b) in l_native.iter().zip(&l_blas) {
            assert!((a - b).abs() < 1e-9, "f64 loss differs: {a} vs {b}");
        }
        for (i, (a, b)) in g_native.data().iter().zip(g_blas.data()).enumerate() {
            let tol = 1e-9 * (1.0 + a.abs());
            assert!((a - b).abs() < tol, "f64 grad[{i}] differs: {a} vs {b}");
        }

        let shadow = SequentialF32::from_model(&model);
        let (_, s_native) = shadow.per_example_grads(&xs, &labels);
        let (_, s_blas) = shadow.per_example_grads_on(blas, &xs, &labels);
        for (i, (a, b)) in s_native.iter().zip(&s_blas).enumerate() {
            let tol = 1e-4 + 1e-3 * f64::from(a.abs());
            assert!(
                (f64::from(*a) - f64::from(*b)).abs() < tol,
                "f32 grad[{i}] differs: {a} vs {b}"
            );
        }
    }

    #[test]
    fn f32_batch_rows_match_single_example_runs() {
        // Row b of the batched result equals the B=1 run on example b —
        // the f32 pipeline keeps per-example independence exactly.
        let model = tiny_cnn(9);
        let shadow = SequentialF32::from_model(&model);
        let xs: Vec<Tensor> = (0..3).map(|i| example(300 + i, &[1, 8, 8])).collect();
        let labels = vec![0, 2, 1];
        let (_, grads) = shadow.per_example_grads(&xs, &labels);
        let dim = shadow.param_count();
        for (b, (x, &y)) in xs.iter().zip(&labels).enumerate() {
            let (_, solo) = shadow.per_example_grads(std::slice::from_ref(x), &[y]);
            for (i, (batched, single)) in
                grads[b * dim..(b + 1) * dim].iter().zip(&solo).enumerate()
            {
                assert_eq!(
                    batched.to_bits(),
                    single.to_bits(),
                    "example {b} grad {i}: {batched} vs {single}"
                );
            }
        }
    }
}

//! Property-based gradient checking: backpropagation through randomly
//! parameterised networks must match central finite differences at random
//! coordinates, and per-example gradients must be exact for every layer
//! combination used by the reference architectures.

use dpaudit_math::seeded_rng;
use dpaudit_nn::{softmax_cross_entropy, BatchNorm2d, Conv2d, Dense, Layer, MaxPool2d, Sequential};
use dpaudit_tensor::Tensor;
use proptest::prelude::*;
use rand::Rng;

fn fd_check(model: &Sequential, x: &Tensor, label: usize, coords: &[usize], tol: f64) {
    let (_, grad) = model.per_example_grad(x, label);
    let base = model.params();
    let loss_at = |params: &[f64]| {
        let mut m = model.clone();
        m.set_params(params);
        softmax_cross_entropy(m.forward(x).data(), label).0
    };
    let h = 1e-5;
    for &idx in coords {
        let idx = idx % base.len();
        let mut up = base.clone();
        up[idx] += h;
        let mut down = base.clone();
        down[idx] -= h;
        let numeric = (loss_at(&up) - loss_at(&down)) / (2.0 * h);
        assert!(
            (numeric - grad[idx]).abs() < tol,
            "coord {idx}: fd {numeric} vs bp {}",
            grad[idx]
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random MLPs: exact gradients at random coordinates.
    #[test]
    fn mlp_gradcheck(
        seed in 0u64..1000,
        hidden in 2usize..10,
        label in 0usize..3,
        coords in proptest::collection::vec(0usize..10_000, 6),
    ) {
        let mut rng = seeded_rng(seed);
        let model = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 5, hidden)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, hidden, 3)),
        ]);
        let x = Tensor::from_vec(
            &[5],
            (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        fd_check(&model, &x, label, &coords, 1e-4);
    }

    /// Random small CNNs with batch norm and pooling: exact gradients.
    #[test]
    fn cnn_gradcheck(
        seed in 0u64..1000,
        channels in 1usize..4,
        label in 0usize..2,
        coords in proptest::collection::vec(0usize..10_000, 5),
    ) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(&mut rng, 1, channels, 3)),
            Layer::BatchNorm2d(BatchNorm2d::new(channels)),
            Layer::Relu,
            Layer::MaxPool2d(MaxPool2d { pool: 2 }),
            Layer::Flatten,
            Layer::Dense(Dense::new(&mut rng, channels * 3 * 3, 2)),
        ]);
        let x = Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        // Non-trivial running statistics, then frozen for the check.
        let x2 = Tensor::from_vec(
            &[1, 8, 8],
            (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        );
        model.update_norm_stats(&[x.clone(), x2]);
        fd_check(&model, &x, label, &coords, 1e-4);
    }

    /// Loss gradients w.r.t. logits sum to zero and softmax stays a
    /// distribution under any logits.
    #[test]
    fn softmax_ce_invariants(logits in proptest::collection::vec(-30.0..30.0f64, 2..12)) {
        let label = logits.len() - 1;
        let (loss, d) = softmax_cross_entropy(&logits, label);
        prop_assert!(loss >= -1e-12);
        prop_assert!(d.iter().sum::<f64>().abs() < 1e-9);
        // Gradient at the label coordinate lies in [−1, 0]; others in [0, 1].
        for (i, &g) in d.iter().enumerate() {
            if i == label {
                prop_assert!((-1.0..=0.0).contains(&g));
            } else {
                prop_assert!((0.0..=1.0).contains(&g));
            }
        }
    }

    /// Parameter round trips survive arbitrary perturbations.
    #[test]
    fn param_vector_round_trip(
        seed in 0u64..1000,
        scale in -2.0..2.0f64,
    ) {
        let mut rng = seeded_rng(seed);
        let mut model = Sequential::new(vec![
            Layer::Dense(Dense::new(&mut rng, 4, 6)),
            Layer::Relu,
            Layer::Dense(Dense::new(&mut rng, 6, 2)),
        ]);
        let p: Vec<f64> = model.params().iter().map(|v| v * scale + 0.1).collect();
        model.set_params(&p);
        prop_assert_eq!(model.params(), p);
    }
}

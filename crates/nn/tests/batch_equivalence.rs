//! Property tests: the batched gradient pipeline is bit-identical to the
//! scalar example-at-a-time oracle, over random shapes and batch sizes.
//!
//! `per_example_grads` promises that row `b` of its `[B, P]` output carries
//! the exact bits `per_example_grad_scalar` would produce for example `b` —
//! the invariant the DPSGD clip loop's determinism rests on.

use dpaudit_math::seeded_rng;
use dpaudit_nn::{BatchNorm2d, Conv2d, Dense, Layer, MaxPool2d, Sequential};
use dpaudit_tensor::Tensor;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn mlp(seed: u64, in_f: usize, hidden: usize, classes: usize) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new(vec![
        Layer::Dense(Dense::new(&mut rng, in_f, hidden)),
        Layer::Relu,
        Layer::Dense(Dense::new(&mut rng, hidden, classes)),
    ])
}

/// All layer kinds in one stack: conv → batch norm → relu → pool → flatten
/// → dense, over an 8×8 single-channel input.
fn cnn(seed: u64) -> Sequential {
    let mut rng = seeded_rng(seed);
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(&mut rng, 1, 2, 3)),
        Layer::BatchNorm2d(BatchNorm2d::new(2)),
        Layer::Relu,
        Layer::MaxPool2d(MaxPool2d { pool: 2 }),
        Layer::Flatten,
        Layer::Dense(Dense::new(&mut rng, 2 * 3 * 3, 3)),
    ])
}

fn assert_batch_matches_scalar(
    model: &Sequential,
    xs: &[Tensor],
    ys: &[usize],
) -> Result<(), TestCaseError> {
    let (losses, grads) = model.per_example_grads(xs, ys);
    let dim = model.param_count();
    prop_assert_eq!(grads.shape(), &[xs.len(), dim]);
    for (i, (x, &y)) in xs.iter().zip(ys).enumerate() {
        let (loss, g) = model.per_example_grad_scalar(x, y);
        prop_assert!(
            losses[i].to_bits() == loss.to_bits(),
            "loss of example {i}: batched {} vs scalar {loss}",
            losses[i]
        );
        let row = &grads.data()[i * dim..(i + 1) * dim];
        for (j, (a, e)) in row.iter().zip(&g).enumerate() {
            prop_assert!(
                a.to_bits() == e.to_bits(),
                "grad[{i}][{j}]: batched {a} vs scalar {e}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn mlp_batched_grads_match_scalar_bitwise(
        seed in 0u64..1_000,
        in_f in 3usize..8,
        hidden in 2usize..6,
        b in 1usize..5,
        raw in proptest::collection::vec(-2.0..2.0f64, 4 * 7),
    ) {
        let classes = 3;
        let model = mlp(seed, in_f, hidden, classes);
        let xs: Vec<Tensor> = (0..b)
            .map(|i| Tensor::from_vec(&[in_f], raw[i * in_f..(i + 1) * in_f].to_vec()))
            .collect();
        let ys: Vec<usize> = (0..b).map(|i| (i + seed as usize) % classes).collect();
        assert_batch_matches_scalar(&model, &xs, &ys)?;
    }

    #[test]
    fn cnn_batched_grads_match_scalar_bitwise(
        seed in 0u64..1_000,
        b in 1usize..4,
        raw in proptest::collection::vec(-1.5..1.5f64, 3 * 64),
    ) {
        let mut model = cnn(seed);
        let xs: Vec<Tensor> = (0..b)
            .map(|i| Tensor::from_vec(&[1, 8, 8], raw[i * 64..(i + 1) * 64].to_vec()))
            .collect();
        let ys: Vec<usize> = (0..b).map(|i| i % 3).collect();
        // Give the frozen batch norm non-trivial statistics first, as the
        // DPSGD trainer does before every step.
        model.update_norm_stats(&xs);
        assert_batch_matches_scalar(&model, &xs, &ys)?;
    }
}

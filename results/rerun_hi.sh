#!/bin/bash
cd /root/repo
./target/release/fig10_eps_from_advantage --reps 80 > results/fig10_eps_from_advantage.txt 2>&1 && echo done fig10
./target/release/fig09_eps_from_belief --reps 40 > results/fig09_eps_from_belief.txt 2>&1 && echo done fig09
./target/release/table2_empirical_advantage --reps 40 > results/table2_empirical_advantage.txt 2>&1 && echo done table2
./target/release/extra_mi_vs_di --reps 30 > results/extra_mi_vs_di.txt 2>&1 && echo done mi_vs_di
./target/release/fig06_belief_distributions --reps 40 > results/fig06_belief_distributions.txt 2>&1 && echo done fig06
echo RERUN_COMPLETE

#!/bin/bash
set -u
cd /root/repo
for bin in table1_parameters fig01_decision_boundary fig02_error_regions fig03_score_curves ablation_composition; do
  ./target/release/$bin > results/$bin.txt 2>&1 && echo "done $bin"
done
./target/release/fig04_ds_vs_ls > results/fig04_ds_vs_ls.txt 2>&1 && echo "done fig04"
./target/release/fig05_sensitivity_course > results/fig05_sensitivity_course.txt 2>&1 && echo "done fig05"
# Figure 6 and Table 2 run on the dpaudit-runtime audit engine: each arm is
# persisted as a resumable trial store under results/stores/ (an interrupted
# run can be finished with `dpaudit audit resume --store <file>`), and the
# per-store reports are appended via the `dpaudit audit report` subcommand.
mkdir -p results/stores
./target/release/fig06_belief_distributions --store-dir results/stores > results/fig06_belief_distributions.txt 2>&1 && echo "done fig06"
for store in results/stores/fig06_*.jsonl; do
  echo "" >> results/fig06_belief_distributions.txt
  echo "== dpaudit audit report --store $store ==" >> results/fig06_belief_distributions.txt
  ./target/release/dpaudit audit report --store "$store" >> results/fig06_belief_distributions.txt 2>&1
done
./target/release/table2_empirical_advantage --store-dir results/stores > results/table2_empirical_advantage.txt 2>&1 && echo "done table2"
for store in results/stores/table2_*.jsonl; do
  echo "" >> results/table2_empirical_advantage.txt
  echo "== dpaudit audit report --store $store ==" >> results/table2_empirical_advantage.txt
  ./target/release/dpaudit audit report --store "$store" >> results/table2_empirical_advantage.txt 2>&1
done
./target/release/fig07_test_accuracy > results/fig07_test_accuracy.txt 2>&1 && echo "done fig07"
./target/release/fig08_eps_from_ls > results/fig08_eps_from_ls.txt 2>&1 && echo "done fig08"
./target/release/fig09_eps_from_belief > results/fig09_eps_from_belief.txt 2>&1 && echo "done fig09"
./target/release/fig10_eps_from_advantage > results/fig10_eps_from_advantage.txt 2>&1 && echo "done fig10"
./target/release/extra_mi_vs_di > results/extra_mi_vs_di.txt 2>&1 && echo "done extra_mi_vs_di"
./target/release/ablation_clipping > results/ablation_clipping.txt 2>&1 && echo "done ablation_clipping"
# Live privacy-loss telemetry artefacts: one instrumented MNIST audit whose
# per-step ε ledger is captured as a deterministic metrics snapshot, a JSONL
# event trace, the rendered metrics report, and a Chrome/Perfetto export of
# the trace (load results/obs/mnist_trace.chrome.json at ui.perfetto.dev).
mkdir -p results/obs
./target/release/dpaudit audit run \
  --workload mnist --reps 4 --steps 3 --train-size 20 --fresh \
  --out results/obs/mnist_audit.jsonl \
  --metrics results/obs/mnist_metrics.json \
  --trace results/obs/mnist_trace.jsonl > results/obs/mnist_audit.txt 2>&1 && echo "done obs audit"
./target/release/dpaudit metrics report \
  --metrics results/obs/mnist_metrics.json \
  --trace results/obs/mnist_trace.jsonl > results/obs/mnist_metrics_report.txt 2>&1 && echo "done obs report"
./target/release/dpaudit trace export \
  --trace results/obs/mnist_trace.jsonl \
  --out results/obs/mnist_trace.chrome.json > /dev/null 2>&1 && echo "done obs chrome export"
./target/release/dpaudit watch \
  --store results/obs/mnist_audit.jsonl --trace results/obs/mnist_trace.jsonl \
  --max-ticks 1 --interval-ms 1 > results/obs/mnist_watch.txt 2>&1 && echo "done obs watch"
# Batched-pipeline throughput across kernel variants: per-example oracle,
# batched clip loop at scalar/SIMD x f64/f32, chunk-parallel SIMD (f64
# sums asserted bit-identical, f32 within tolerance; ratios are pure speed).
# Build bench_step with `--features blas` beforehand to also record one
# f64 + one f32 row per non-native gemm backend (tolerance-gated inline).
./target/release/bench_step > results/BENCH_step.json 2>results/BENCH_step.log && echo "done bench_step"
echo ALL_RUNS_COMPLETE

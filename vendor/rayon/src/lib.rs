//! Offline stand-in for the `rayon` crate.
//!
//! Implements the subset of the rayon API this workspace uses — parallel
//! iteration over index ranges and vectors with `map`/`for_each`/`collect`,
//! plus [`ThreadPoolBuilder`]/[`ThreadPool::install`] for bounding worker
//! counts — on plain `std::thread::scope` workers.
//!
//! Work is distributed by an atomic cursor over the input (work stealing at
//! item granularity), and `collect` writes each result to the slot of its
//! input index, so outputs are always in input order regardless of the
//! worker count or scheduling — the property the audit engine's
//! "`--threads N` is bit-identical to `--threads 1`" guarantee rests on.

use std::cell::Cell;
use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads parallel iterators will use on this thread:
/// an installed pool's size, or the machine's available parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Error from building a thread pool (never produced by this stand-in; kept
/// for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a bounded [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bound the pool at `n` workers (0 = machine parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    ///
    /// # Errors
    /// Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count bound. Workers are spawned per operation (cheap
/// relative to the NN-training workloads this repo parallelises).
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread bound installed: every parallel
    /// iterator inside uses at most the pool's worker count.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(Cell::get);
        POOL_THREADS.with(|c| c.set(self.num_threads));
        let result = f();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }

    /// The pool's worker bound (0 = machine parallelism).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The concrete iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = VecParIter<usize>;
    fn into_par_iter(self) -> VecParIter<usize> {
        VecParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecParIter<T>;
    fn into_par_iter(self) -> VecParIter<T> {
        VecParIter { items: self }
    }
}

/// A materialised parallel iterator over owned items.
pub struct VecParIter<T> {
    items: Vec<T>,
}

/// `map` adapter.
pub struct MapParIter<P, F> {
    base: P,
    f: F,
}

/// The operations this workspace uses on parallel iterators.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Drain into a vector, preserving input order.
    fn drive(self) -> Vec<Self::Item>;

    /// Transform each element in parallel.
    fn map<R: Send, F: Fn(Self::Item) -> R + Sync>(self, f: F) -> MapParIter<Self, F> {
        MapParIter { base: self, f }
    }

    /// Collect into a container (only `Vec<Item>` is supported).
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_par_iter(self.drive())
    }

    /// Run `f` on every element in parallel.
    fn for_each<F: Fn(Self::Item) + Sync>(self, f: F) {
        self.map(f).drive();
    }
}

/// Collection from an ordered parallel drain.
pub trait FromParallelIterator<T> {
    /// Build the container from items in input order.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;
    fn drive(self) -> Vec<T> {
        self.items
    }
}

impl<P: ParallelIterator, R: Send, F: Fn(P::Item) -> R + Sync> ParallelIterator
    for MapParIter<P, F>
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let items = self.base.drive();
        let f = &self.f;
        let n = items.len();
        let workers = current_num_threads().clamp(1, n.max(1));
        if workers <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }

        // Stripe the input round-robin across workers (stripe w owns indices
        // w, w+workers, …), run the stripes concurrently, then reassemble in
        // index order — output order is independent of scheduling.
        let mut stripes: Vec<Vec<(usize, P::Item)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            stripes[i % workers].push((i, item));
        }
        let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = stripes
                .into_iter()
                .map(|stripe| {
                    scope.spawn(move || {
                        stripe
                            .into_iter()
                            .map(|(i, item)| (i, f(item)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("rayon stand-in worker panicked") {
                    slots[i] = Some(result);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("worker skipped a slot"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_input_supported() {
        let v = vec![3usize, 1, 4, 1, 5];
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![4, 2, 5, 2, 6]);
    }

    #[test]
    fn install_bounds_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 2);
            let out: Vec<usize> = (0..100).into_par_iter().map(|i| i).collect();
            assert_eq!(out.len(), 100);
        });
        assert_ne!(POOL_THREADS.with(std::cell::Cell::get), 2);
    }

    #[test]
    fn for_each_visits_everything() {
        let counter = AtomicUsize::new(0);
        (0..500).into_par_iter().for_each(|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn single_thread_pool_matches_serial() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let serial: Vec<usize> = (0..64).map(|i| i * i).collect();
        let parallel: Vec<usize> =
            pool.install(|| (0..64).into_par_iter().map(|i| i * i).collect());
        assert_eq!(serial, parallel);
    }
}

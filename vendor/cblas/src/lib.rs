//! Offline stand-in for a CBLAS gemm binding.
//!
//! The build environment has no crates.io access and no system BLAS, so this
//! crate plays the role a `cblas-sys` + vendored OpenBLAS pair would play in
//! the real dependency tree: it exposes the row-major `dgemm`/`sgemm` entry
//! points (the exact subset `dpaudit-tensor`'s `BlasBackend` calls) with
//! CBLAS semantics — `C ← α·op(A)·op(B) + β·C`.
//!
//! The kernel is a deliberately *library-shaped* implementation: each output
//! row is accumulated over fixed `KC`-element k-panels, with every panel
//! reduced into a private partial-sum buffer before being folded into `C`.
//! That is how blocked BLAS libraries actually sum, and it produces a
//! different floating-point summation tree than `dpaudit-tensor`'s native
//! kernels (which seed from `C` and add terms in one ascending-`k` chain).
//! The bitwise divergence is therefore *real*, which is exactly what the
//! backend tolerance-equivalence suite needs to exercise: a backend that only
//! ever matched the oracle bit-for-bit would make the gating vacuous.
//!
//! Restoring a real BLAS later means swapping the `[workspace.dependencies]`
//! path entry for a registry binding; the call sites are already written
//! against the CBLAS signature.

/// Matrix storage order. Only row-major is implemented — the workspace never
/// calls the column-major path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    RowMajor,
}

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transpose {
    None,
    Trans,
}

/// Identifies the BLAS implementation behind this binding, in the spirit of
/// `openblas_get_config()`. Surfaced by `dpaudit backend list`.
pub fn vendor() -> &'static str {
    "rustblas (in-tree reference, KC=64 panel accumulation)"
}

/// k-panel width: terms are summed into a private buffer per `KC`-wide slice
/// of the inner dimension, then folded into `C`.
const KC: usize = 64;

macro_rules! gemm_impl {
    ($name:ident, $t:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// Computes `C ← α·op(A)·op(B) + β·C` for row-major matrices, where
        /// `op(A)` is `m×k` and `op(B)` is `k×n`. `lda`/`ldb`/`ldc` are the
        /// row strides of the *stored* matrices.
        ///
        /// # Panics
        /// Panics if a buffer is too short for its dimensions and stride.
        #[allow(clippy::too_many_arguments)]
        pub fn $name(
            _layout: Layout,
            transa: Transpose,
            transb: Transpose,
            m: usize,
            n: usize,
            k: usize,
            alpha: $t,
            a: &[$t],
            lda: usize,
            b: &[$t],
            ldb: usize,
            beta: $t,
            c: &mut [$t],
            ldc: usize,
        ) {
            let (a_rows, a_cols) = match transa {
                Transpose::None => (m, k),
                Transpose::Trans => (k, m),
            };
            let (b_rows, b_cols) = match transb {
                Transpose::None => (k, n),
                Transpose::Trans => (n, k),
            };
            assert!(lda >= a_cols.max(1), "gemm: lda shorter than op(A) row");
            assert!(ldb >= b_cols.max(1), "gemm: ldb shorter than op(B) row");
            assert!(ldc >= n.max(1), "gemm: ldc shorter than C row");
            if a_rows > 0 {
                assert!(
                    a.len() >= (a_rows - 1) * lda + a_cols,
                    "gemm: A buffer too short"
                );
            }
            if b_rows > 0 {
                assert!(
                    b.len() >= (b_rows - 1) * ldb + b_cols,
                    "gemm: B buffer too short"
                );
            }
            if m > 0 {
                assert!(c.len() >= (m - 1) * ldc + n, "gemm: C buffer too short");
            }
            if m == 0 || n == 0 {
                return;
            }
            let mut panel = vec![0.0 as $t; n];
            for i in 0..m {
                let crow = &mut c[i * ldc..i * ldc + n];
                if beta != 1.0 {
                    for cv in crow.iter_mut() {
                        *cv *= beta;
                    }
                }
                let mut kp = 0;
                while kp < k {
                    let kend = (kp + KC).min(k);
                    panel.fill(0.0);
                    for kk in kp..kend {
                        let aik = match transa {
                            Transpose::None => a[i * lda + kk],
                            Transpose::Trans => a[kk * lda + i],
                        };
                        let scaled = alpha * aik;
                        match transb {
                            Transpose::None => {
                                let brow = &b[kk * ldb..kk * ldb + n];
                                for (pv, bv) in panel.iter_mut().zip(brow) {
                                    *pv += scaled * *bv;
                                }
                            }
                            Transpose::Trans => {
                                for (j, pv) in panel.iter_mut().enumerate() {
                                    *pv += scaled * b[j * ldb + kk];
                                }
                            }
                        }
                    }
                    for (cv, pv) in crow.iter_mut().zip(&panel) {
                        *cv += *pv;
                    }
                    kp = kend;
                }
            }
        }
    };
}

gemm_impl!(dgemm, f64, "Double-precision general matrix multiply.");
gemm_impl!(sgemm, f32, "Single-precision general matrix multiply.");

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn naive(
        transa: Transpose,
        transb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        a: &[f64],
        lda: usize,
        b: &[f64],
        ldb: usize,
        beta: f64,
        c: &mut [f64],
        ldc: usize,
    ) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    let av = match transa {
                        Transpose::None => a[i * lda + kk],
                        Transpose::Trans => a[kk * lda + i],
                    };
                    let bv = match transb {
                        Transpose::None => b[kk * ldb + j],
                        Transpose::Trans => b[j * ldb + kk],
                    };
                    acc += av * bv;
                }
                c[i * ldc + j] = alpha * acc + beta * c[i * ldc + j];
            }
        }
    }

    fn fill(len: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2000) as f64 / 1000.0 - 1.0
            })
            .collect()
    }

    fn check(
        transa: Transpose,
        transb: Transpose,
        m: usize,
        n: usize,
        k: usize,
        alpha: f64,
        beta: f64,
    ) {
        let (a_rows, a_cols) = match transa {
            Transpose::None => (m, k),
            Transpose::Trans => (k, m),
        };
        let (b_rows, b_cols) = match transb {
            Transpose::None => (k, n),
            Transpose::Trans => (n, k),
        };
        let a = fill(a_rows * a_cols, 7 + m as u64);
        let b = fill(b_rows * b_cols, 11 + n as u64);
        let seed_c = fill(m * n, 13 + k as u64);
        let mut got = seed_c.clone();
        let mut want = seed_c;
        dgemm(
            Layout::RowMajor,
            transa,
            transb,
            m,
            n,
            k,
            alpha,
            &a,
            a_cols,
            &b,
            b_cols,
            beta,
            &mut got,
            n,
        );
        naive(
            transa, transb, m, n, k, alpha, &a, a_cols, &b, b_cols, beta, &mut want, n,
        );
        for (g, w) in got.iter().zip(&want) {
            assert!(
                (g - w).abs() <= 1e-9 * (1.0 + w.abs()),
                "mismatch: got {g}, want {w} ({m}x{n}x{k})"
            );
        }
    }

    #[test]
    fn dgemm_matches_naive_across_shapes_and_transposes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 2, 5),
            (4, 7, 4),
            (8, 8, 8),
            (9, 5, 11),
            (13, 16, 7),
            (5, 3, 130), // spans three k-panels
        ] {
            for &ta in &[Transpose::None, Transpose::Trans] {
                for &tb in &[Transpose::None, Transpose::Trans] {
                    check(ta, tb, m, n, k, 1.0, 1.0);
                }
            }
        }
    }

    #[test]
    fn dgemm_honours_alpha_and_beta() {
        check(Transpose::None, Transpose::None, 6, 4, 9, 0.5, 0.0);
        check(Transpose::None, Transpose::Trans, 6, 4, 9, -2.0, 3.0);
    }

    #[test]
    fn sgemm_matches_f32_naive() {
        let m = 4;
        let n = 5;
        let k = 70; // spans two k-panels
        let a: Vec<f32> = fill(m * k, 3).iter().map(|&v| v as f32).collect();
        let b: Vec<f32> = fill(n * k, 5).iter().map(|&v| v as f32).collect();
        let mut got = vec![0.25f32; m * n];
        let want_seed = got.clone();
        sgemm(
            Layout::RowMajor,
            Transpose::None,
            Transpose::Trans,
            m,
            n,
            k,
            1.0,
            &a,
            k,
            &b,
            k,
            1.0,
            &mut got,
            n,
        );
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                let want = want_seed[i * n + j] + acc;
                let g = got[i * n + j];
                assert!(
                    (g - want).abs() <= 1e-3 * (1.0 + want.abs()),
                    "sgemm mismatch: got {g}, want {want}"
                );
            }
        }
    }

    #[test]
    fn empty_dimensions_are_no_ops() {
        let a: Vec<f64> = vec![];
        let b: Vec<f64> = vec![];
        let mut c: Vec<f64> = vec![];
        dgemm(
            Layout::RowMajor,
            Transpose::None,
            Transpose::None,
            0,
            0,
            0,
            1.0,
            &a,
            1,
            &b,
            1,
            1.0,
            &mut c,
            1,
        );
    }

    #[test]
    fn vendor_string_identifies_the_stand_in() {
        assert!(vendor().contains("rustblas"));
    }
}

//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec()`]: an exact `usize` or a half-open range.
pub trait IntoLenRange {
    /// Convert to `(min, max_exclusive)`.
    fn into_len_range(self) -> (usize, usize);
}

impl IntoLenRange for usize {
    fn into_len_range(self) -> (usize, usize) {
        (self, self + 1)
    }
}

impl IntoLenRange for Range<usize> {
    fn into_len_range(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and whose
/// length is drawn from `len`.
pub fn vec<S: Strategy>(element: S, len: impl IntoLenRange) -> VecStrategy<S> {
    let (min_len, max_len) = len.into_len_range();
    assert!(min_len < max_len, "empty length range for collection::vec");
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// See [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.min_len + 1 == self.max_len {
            self.min_len
        } else {
            rng.gen_range(self.min_len..self.max_len)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = StdRng::seed_from_u64(11);
        let fixed = vec(0.0..1.0f64, 5).sample(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..100 {
            let v = vec(0usize..3, 2..7).sample(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }
}

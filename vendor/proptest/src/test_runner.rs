//! Test-case configuration, failure type, and deterministic seeding.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (produced by `prop_assert!`/`prop_assert_eq!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wrap a failure message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG for one case of one property: seeded from the test name and the
/// case index, so every run of the suite samples identical inputs.
pub fn rng_for_case(test_name: &str, case: u32) -> StdRng {
    // FNV-1a over the name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash ^ (u64::from(case) << 32) ^ u64::from(case))
}

//! Input samplers.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// A source of random values of one type.
///
/// Unlike upstream proptest there is no value tree or shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(f64, f32, usize, u64, u32, i64, i32);

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let x = (1.5..2.5f64).sample(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&n));
            let k = (2u64..32).sample(&mut rng);
            assert!((2..32).contains(&k));
        }
    }

    #[test]
    fn just_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Just(41i32).sample(&mut rng), 41);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Random testing without shrinking: each test case draws its inputs from
//! [`Strategy`](strategy::Strategy) samplers seeded deterministically per case index, so failures
//! reproduce exactly on re-run. The API subset matches what this workspace
//! uses — range strategies, `proptest::collection::vec`, the `proptest!`
//! macro with `#![proptest_config(ProptestConfig::with_cases(n))]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut proptest_rng =
                        $crate::test_runner::rng_for_case(stringify!($name), case);
                    $(
                        let $pat = $crate::strategy::Strategy::sample(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )*
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(failure) = outcome {
                        panic!("proptest case {case} of {}: {failure}", config.cases);
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),*) $body
            )*
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        fn f64_range_respected(x in -2.0..3.0f64) {
            prop_assert!((-2.0..3.0).contains(&x));
        }

        fn usize_range_respected(n in 1usize..10) {
            prop_assert!((1..10).contains(&n));
        }

        fn vec_fixed_and_ranged_lengths(
            fixed in crate::collection::vec(0.0..1.0f64, 4),
            ranged in crate::collection::vec(-1.0..1.0f64, 2..6),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((2..6).contains(&ranged.len()));
        }

        fn mut_pattern_allowed(mut xs in crate::collection::vec(0.0..1.0f64, 1..5)) {
            xs.push(0.5);
            prop_assert!(!xs.is_empty());
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::rng_for_case("t", 3);
        let b = crate::test_runner::rng_for_case("t", 3);
        assert_eq!(a, b);
        let c = crate::test_runner::rng_for_case("t", 4);
        assert_ne!(a, c);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the *subset* of the `rand 0.8` API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_bool` and `gen_range`.
//!
//! The generator is xoshiro256++ (Blackman & Vigna) seeded through the
//! SplitMix64 expander — a different stream than upstream `StdRng`
//! (ChaCha12), but every consumer in this workspace treats the RNG as an
//! opaque seeded stream, so only determinism per seed matters, not the
//! concrete stream. Numerical properties (equidistribution, period 2^256−1)
//! comfortably exceed what the experiments need.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

pub use rngs::StdRng;

/// Core of a random number generator: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a single `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an RNG's raw bits (the stand-in for
/// upstream's `Standard` distribution).
pub trait UniformSample: Sized {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges a value can be drawn uniformly from (stand-in for upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_from(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_from(rng) as f32;
        self.start + u * (self.end - self.start)
    }
}

/// Uniform integer in `[0, span)` by rejection sampling (no modulo bias).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Largest multiple of span representable in u64.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_below(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span + 1);
                ((lo as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

int_sample_range!(
    usize => u64,
    u64 => u64,
    u32 => u64,
    u16 => u64,
    u8 => u64,
    isize => i64,
    i64 => i64,
    i32 => i64,
    i16 => i64,
    i8 => i64,
);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the generator's raw bits.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_from(self) < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&x));
            let y = rng.gen_range(0..7usize);
            assert!(y < 7);
            let z = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[(rng.gen_range(-2..=2) + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}

//! Offline stand-in for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness with criterion's API shape:
//! groups, `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark runs a short
//! warm-up then `sample_size` timed samples, and reports the median
//! per-iteration time. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 100,
        }
    }
}

/// A named set of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time `f` (which receives a [`Bencher`]) and print the median sample.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
        };
        // Warm-up and calibration: grow iteration count until one sample
        // takes ≳1 ms so cheap kernels aren't dominated by timer overhead.
        loop {
            bencher.samples.clear();
            f(&mut bencher);
            let per_sample = bencher.samples.first().copied().unwrap_or_default();
            if per_sample >= Duration::from_millis(1) || bencher.iters_per_sample >= 1 << 20 {
                break;
            }
            bencher.iters_per_sample *= 8;
        }
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mut per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / bencher.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
        eprintln!(
            "  {}/{id}: median {:.3} µs/iter ({} samples × {} iters)",
            self.name,
            median * 1e6,
            self.sample_size,
            bencher.iters_per_sample,
        );
        self
    }

    /// End the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// Passed to the closure under test; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run the routine `iters_per_sample` times and record one sample.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed());
    }
}

/// Bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(5);
        let mut count = 0u64;
        g.bench_function("noop", |b| b.iter(|| count += 1));
        g.finish();
        assert!(count > 0);
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so serialisation is
//! vendored: this crate defines a JSON-shaped data model ([`Value`]) and the
//! [`Serialize`]/[`Deserialize`] traits as direct conversions to and from
//! it, and re-exports derive macros (from the sibling `serde_derive`
//! proc-macro crate) that generate those conversions for structs and enums.
//!
//! The encoding mirrors upstream serde's JSON defaults so archived
//! transcripts remain human-readable and stable:
//!
//! * struct → object with one key per field, in declaration order;
//! * unit enum variant → string `"Variant"`;
//! * newtype/tuple variant → object `{"Variant": value}` / `{"Variant": [..]}`;
//! * struct variant → object `{"Variant": {..}}`;
//! * `Option::None` → `null`; missing object keys deserialise as `None`;
//! * `#[serde(default)]` fields fall back to `Default::default()`.

pub use serde_derive::{Deserialize, Serialize};

mod error;
mod impls;
mod value;

pub use error::Error;
#[doc(hidden)]
pub use value::write_json_string;
pub use value::Value;

/// Conversion into the self-describing [`Value`] data model.
pub trait Serialize {
    /// Represent `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the self-describing [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// A typed [`Error`] naming the mismatch.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

//! The self-describing data model shared by `serde` and `serde_json`.

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (like `serde_json` with its
/// `preserve_order` feature), which keeps serialised structs in field
/// declaration order — important for stable, diffable archives.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An ordered map with string keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The JSON type name, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a key in an object.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        match self {
            Value::Object(entries) => {
                if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
                    slot.1 = value;
                } else {
                    entries.push((key, value));
                }
            }
            other => panic!("Value::insert on a {}", other.kind()),
        }
    }

    /// The value as an `f64`, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `&str`, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `bool`, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Append `s` as a JSON string literal (with the mandatory escapes) to any
/// `fmt::Write` sink. Shared by the `Display` impl here and the pretty
/// printer in `serde_json`.
#[doc(hidden)]
pub fn write_json_string<W: std::fmt::Write>(out: &mut W, s: &str) -> std::fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

impl std::fmt::Display for Value {
    /// Compact JSON text. Numbers use Rust's shortest round-trip `Display`
    /// (integral values print without a fractional part); non-finite numbers
    /// print `null`, matching upstream serde_json.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, item)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{item}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifying object indexing, as in `serde_json`: assigning to a
    /// missing key inserts it.
    ///
    /// # Panics
    /// Panics when `self` is not an object.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(entries) => {
                if let Some(i) = entries.iter().position(|(k, _)| k == key) {
                    &mut entries[i].1
                } else {
                    entries.push((key.to_string(), Value::Null));
                    &mut entries.last_mut().expect("just pushed").1
                }
            }
            other => panic!("Value index `{key}` on a {}", other.kind()),
        }
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        self.index_mut(key.as_str())
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => &items[i],
            other => panic!("Value index [{i}] on a {}", other.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_get_and_insert() {
        let mut v = Value::Object(vec![("a".into(), Value::Number(1.0))]);
        assert_eq!(v.get("a"), Some(&Value::Number(1.0)));
        assert_eq!(v.get("b"), None);
        v.insert("b", Value::Bool(true));
        v.insert("a", Value::Number(2.0));
        assert_eq!(v.get("a"), Some(&Value::Number(2.0)));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
    }

    #[test]
    fn index_mut_auto_vivifies() {
        let mut v = Value::Object(vec![]);
        v["x".to_string()] = Value::Number(3.0);
        assert_eq!(v["x"], Value::Number(3.0));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Number(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::String("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.as_f64().is_none());
        assert_eq!(Value::Array(vec![Value::Null]).as_array().unwrap().len(), 1);
    }
}

//! The deserialisation/serialisation error type.

/// A (de)serialisation failure with a human-readable path description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build from any message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// A value had the wrong JSON type.
    pub fn type_mismatch(expected: &str, got: &crate::Value) -> Self {
        Error(format!("expected {expected}, got {}", got.kind()))
    }

    /// A struct field was absent from the object.
    pub fn missing_field(type_name: &str, field: &str) -> Self {
        Error(format!("missing field `{field}` for {type_name}"))
    }

    /// An enum tag did not name a known variant.
    pub fn unknown_variant(type_name: &str, tag: &str) -> Self {
        Error(format!("unknown variant `{tag}` for {type_name}"))
    }

    /// Prefix the message with more context (used while unwinding nesting).
    #[must_use]
    pub fn context(self, what: &str) -> Self {
        Error(format!("{what}: {}", self.0))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

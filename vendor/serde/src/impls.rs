//! [`Serialize`]/[`Deserialize`] implementations for std types.

use crate::{Deserialize, Error, Serialize, Value};

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::type_mismatch("bool", value))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::type_mismatch("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|n| n as f32)
    }
}

/// Integers ride on the f64 number representation; all integers this
/// workspace serialises (trial indices, step counts, seeds re-encoded as
/// numbers stay < 2^53 in practice for counts; full-width u64 seeds are
/// serialised as strings by the runtime store to avoid precision loss).
macro_rules! int_impls {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value
                    .as_f64()
                    .ok_or_else(|| Error::type_mismatch("integer", value))?;
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(Error::custom(format!(
                        "expected integer, got non-integral number {n}"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::type_mismatch("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_value(item).map_err(|e| e.context(&format!("[{i}]"))))
                .collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => Ok((
                A::from_value(&items[0]).map_err(|e| e.context("[0]"))?,
                B::from_value(&items[1]).map_err(|e| e.context("[1]"))?,
            )),
            other => Err(Error::type_mismatch("2-element array", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| {
                    Ok((
                        k.clone(),
                        V::from_value(v).map_err(|e| e.context(k.as_str()))?,
                    ))
                })
                .collect(),
            other => Err(Error::type_mismatch("object", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn integer_rejects_fractional_and_out_of_range() {
        assert!(u32::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(u32::from_value(&Value::Number(-1.0)).is_err());
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1.0f64, 2.0, 3.0];
        assert_eq!(Vec::<f64>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Number(2.0)).unwrap(),
            Some(2.0)
        );
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
    }

    #[test]
    fn pair_round_trips() {
        let p = ("k".to_string(), 3.0f64);
        assert_eq!(<(String, f64)>::from_value(&p.to_value()).unwrap(), p);
    }
}

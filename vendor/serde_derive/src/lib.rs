//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! Generates `serde::Serialize`/`serde::Deserialize` impls (direct
//! conversions to/from `serde::Value`) for the shapes this workspace uses:
//! structs with named fields, and enums with unit / tuple / struct variants.
//! The input item is parsed directly from the raw `TokenStream` — the build
//! environment has no crates.io access, so `syn`/`quote` are unavailable.
//!
//! Supported attributes: `#[serde(default)]` on a named field (missing key →
//! `Default::default()`). All other attributes (doc comments, `#[default]`,
//! derive lists) are skipped.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named field of a struct or struct variant.
struct Field {
    name: String,
    serde_default: bool,
}

/// The body shape of one enum variant.
enum VariantKind {
    Unit,
    /// Tuple variant with this many fields (1 = newtype).
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse().expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------- parsing --

fn ident_text(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tt: &TokenTree, ch: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Skip a leading run of `#[...]` attributes; returns the index after them
/// and whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, bool) {
    let mut serde_default = false;
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
            let text = g.stream().to_string();
            if text.starts_with("serde") && text.contains("default") {
                serde_default = true;
            }
        }
        i += 2;
    }
    (i, serde_default)
}

/// Skip `pub` / `pub(crate)` / `pub(super)` visibility.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(
            tokens.get(i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            i += 1;
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let keyword = ident_text(&tokens[i]).expect("expected `struct` or `enum`");
    i += 1;
    let name = ident_text(&tokens[i]).expect("expected item name");
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        _ => panic!("serde_derive stand-in supports only brace-bodied, non-generic items: {name}"),
    };

    match keyword.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive serde traits for `{other}` item {name}"),
    }
}

/// Parse `name: Type, ...` named fields, tolerating attributes, visibility,
/// generic types with top-level commas in angle brackets, and a trailing comma.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, serde_default) = skip_attrs(&tokens, i);
        i = skip_visibility(&tokens, next);
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]).expect("expected field name");
        i += 1;
        assert!(is_punct(&tokens[i], ':'), "expected `:` after field {name}");
        i += 1;
        // Skip the type: everything up to the next comma outside `<...>`.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if is_punct(&tokens[i], '<') {
                angle_depth += 1;
            } else if is_punct(&tokens[i], '>') {
                angle_depth -= 1;
            } else if is_punct(&tokens[i], ',') && angle_depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field {
            name,
            serde_default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = ident_text(&tokens[i]).expect("expected variant name");
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Struct(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(i), Some(tt) if is_punct(tt, ',')) {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

/// Count the fields of a tuple variant: top-level commas (outside angle
/// brackets and nested groups) separate them; a trailing comma is tolerated.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        if is_punct(&tt, '<') {
            angle_depth += 1;
        } else if is_punct(&tt, '>') {
            angle_depth -= 1;
        } else if is_punct(&tt, ',') && angle_depth == 0 {
            count += 1;
            saw_token = false;
            continue;
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------- codegen --

fn serialize_struct(name: &str, fields: &[Field]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                f.name
            )
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(vec![{entries}])\n\
             }}\n\
         }}"
    )
}

/// Expression rebuilding one named field from object `{src}` (an expression
/// of type `&Value`), honouring `#[serde(default)]` and Option-as-missing.
fn field_expr(context: &str, src: &str, f: &Field) -> String {
    let fallback = if f.serde_default {
        "::core::default::Default::default()".to_string()
    } else {
        // Try Null first so Option fields treat a missing key as None; any
        // other type reports a proper missing-field error.
        format!(
            "::serde::Deserialize::from_value(&::serde::Value::Null)\n\
                 .map_err(|_| ::serde::Error::missing_field(\"{context}\", \"{0}\"))?",
            f.name
        )
    };
    format!(
        "{0}: match {src}.get(\"{0}\") {{\n\
             Some(v) => ::serde::Deserialize::from_value(v)\n\
                 .map_err(|e| e.context(\"{context}.{0}\"))?,\n\
             None => {fallback},\n\
         }},",
        f.name
    )
}

fn deserialize_struct(name: &str, fields: &[Field]) -> String {
    let field_exprs: String = fields
        .iter()
        .map(|f| field_expr(name, "value", f))
        .collect();
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 if !matches!(value, ::serde::Value::Object(_)) {{\n\
                     return Err(::serde::Error::type_mismatch(\"object\", value));\n\
                 }}\n\
                 Ok({name} {{ {field_exprs} }})\n\
             }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let tag = &v.name;
            match &v.kind {
                VariantKind::Unit => {
                    format!("{name}::{tag} => ::serde::Value::String(String::from(\"{tag}\")),")
                }
                VariantKind::Tuple(1) => format!(
                    "{name}::{tag}(f0) => ::serde::Value::Object(vec![(\n\
                         String::from(\"{tag}\"), ::serde::Serialize::to_value(f0),\n\
                     )]),"
                ),
                VariantKind::Tuple(n) => {
                    let binders: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                    let items: String = binders
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{tag}({binds}) => ::serde::Value::Object(vec![(\n\
                             String::from(\"{tag}\"), ::serde::Value::Array(vec![{items}]),\n\
                         )]),",
                        binds = binders.join(", ")
                    )
                }
                VariantKind::Struct(fields) => {
                    let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                    let entries: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(String::from(\"{0}\"), ::serde::Serialize::to_value({0})),",
                                f.name
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{tag} {{ {binders} }} => ::serde::Value::Object(vec![(\n\
                             String::from(\"{tag}\"), ::serde::Value::Object(vec![{entries}]),\n\
                         )]),",
                        binders = binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect();
    let payload_arms: String = variants
        .iter()
        .filter_map(|v| {
            let tag = &v.name;
            let context = format!("{name}::{tag}");
            match &v.kind {
                VariantKind::Unit => None,
                VariantKind::Tuple(1) => Some(format!(
                    "\"{tag}\" => Ok({name}::{tag}(\n\
                         ::serde::Deserialize::from_value(_inner)\n\
                             .map_err(|e| e.context(\"{context}\"))?,\n\
                     )),"
                )),
                VariantKind::Tuple(n) => {
                    let items: String = (0..*n)
                        .map(|k| {
                            format!(
                                "::serde::Deserialize::from_value(&items[{k}usize])\n\
                                     .map_err(|e| e.context(\"{context}.{k}\"))?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{tag}\" => match _inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {n}usize =>\n\
                                 Ok({name}::{tag}({items})),\n\
                             other => Err(::serde::Error::type_mismatch(\n\
                                 \"{n}-element array\", other)),\n\
                         }},"
                    ))
                }
                VariantKind::Struct(fields) => {
                    let field_exprs: String = fields
                        .iter()
                        .map(|f| field_expr(&context, "_inner", f))
                        .collect();
                    Some(format!(
                        "\"{tag}\" => Ok({name}::{tag} {{ {field_exprs} }}),"
                    ))
                }
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match value {{\n\
                     ::serde::Value::String(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                     }},\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, _inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {payload_arms}\n\
                             other => Err(::serde::Error::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::type_mismatch(\n\
                         \"variant tag string or single-key object\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}

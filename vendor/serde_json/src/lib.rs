//! Offline stand-in for the `serde_json` crate.
//!
//! Prints and parses the JSON text form of the [`Value`] data model defined
//! in the vendored `serde` crate. The output conventions:
//!
//! * compact form has no whitespace; pretty form indents by two spaces;
//! * numbers print with Rust's shortest round-trip `Display`; integral
//!   values print without a fractional part; non-finite values print `null`
//!   (as upstream serde_json does);
//! * object keys keep insertion order.

pub use serde::{Error, Value};

mod de;
mod ser;

pub use de::parse_value;

/// Convert any serialisable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuild a deserialisable type from a [`Value`] tree.
///
/// # Errors
/// A typed [`Error`] naming the mismatch.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialise to compact JSON text.
///
/// # Errors
/// Never fails in this stand-in; the `Result` keeps upstream's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    ser::write_compact(&mut out, &value.to_value());
    Ok(out)
}

/// Serialise to pretty JSON text (two-space indent).
///
/// # Errors
/// Never fails in this stand-in; the `Result` keeps upstream's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    ser::write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parse JSON text into a deserialisable type.
///
/// # Errors
/// On malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T, Error> {
    let value = de::parse_value(text)?;
    T::from_value(&value)
}

/// Build a [`Value`] from an object literal with string keys, an array
/// literal, `null`, or any serialisable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $(($key.to_string(), $crate::to_value(&$val))),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::to_value(&$item)),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({ "a": 1.5, "b": "s", "flag": true });
        assert_eq!(v["a"], Value::Number(1.5));
        assert_eq!(v["b"], Value::String("s".into()));
        assert_eq!(json!(null), Value::Null);
        assert_eq!(
            json!([1.0, 2.0]),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0)])
        );
        let xs = vec![1.0f64, 2.0];
        assert_eq!(json!(xs)[1], Value::Number(2.0));
    }

    #[test]
    fn round_trip_compact_and_pretty() {
        let v = json!({ "name": "mnist", "n": 3, "xs": vec![0.5f64, -1.0] });
        for text in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn float_formats() {
        assert_eq!(to_string(&3.0f64).unwrap(), "3");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        // Shortest round-trip: the printed text parses back bit-identically.
        for x in [1.0 / 3.0, 2f64.sqrt(), 1e-12, -0.007, 123456789.123] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line1\nline2\t\"quoted\" \\ \u{1}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_layout() {
        let v = json!({ "a": 1, "b": vec![2.0f64] });
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}"
        );
    }
}

//! JSON text emission. Compact printing lives on `Value`'s `Display` impl
//! (in the vendored `serde` crate); this module adds the pretty printer.

use serde::{write_json_string, Value};
use std::fmt::Write;

/// Append `value` with no whitespace.
pub fn write_compact(out: &mut String, value: &Value) {
    write!(out, "{value}").expect("fmt::Write on String cannot fail");
}

/// Append `value` pretty-printed with two-space indentation, starting at
/// nesting depth `indent`.
pub fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_json_string(out, key).expect("fmt::Write on String cannot fail");
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        leaf => write_compact(out, leaf),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

//! A recursive-descent JSON parser over the raw bytes.

use serde::{Error, Value};

/// Parse one complete JSON document into a [`Value`].
///
/// # Errors
/// On malformed input or trailing garbage.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_whitespace();
    let value = p.value()?;
    p.skip_whitespace();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at byte {start}")))
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs (for astral-plane chars).
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_value(r#"{ "a": [1, -2.5e3, null], "b": {"inner": true}, "s": "x\ny" }"#)
            .unwrap();
        assert_eq!(v["a"][1], Value::Number(-2500.0));
        assert_eq!(v["b"]["inner"], Value::Bool(true));
        assert_eq!(v["s"], Value::String("x\ny".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("nul").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse_value(r#""é😀""#).unwrap();
        assert_eq!(v, Value::String("é😀".into()));
    }
}

//! Quickstart: choose ε from an identifiability target, train one private
//! model, let the DP adversary audit it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dp_identifiability::prelude::*;

fn main() {
    // ---------------------------------------------------------------- 1 ---
    // A data owner speaks identifiability, not ε: "after releasing all
    // training updates, an adversary that already knows every other record
    // may be at most 90% certain that my record was in the training data."
    let rho_beta_target = 0.90;
    let delta = 1e-3;
    let epsilon = epsilon_for_rho_beta(rho_beta_target); // Eq. 10
    let rho_alpha_target = rho_alpha(epsilon, delta); // Theorem 2
    println!("identifiability target: rho_beta = {rho_beta_target}");
    println!("  -> total epsilon      = {epsilon:.3}");
    println!("  -> expected advantage = {rho_alpha_target:.3} (rho_alpha)");

    // ---------------------------------------------------------------- 2 ---
    // Build the (synthetic) Purchase-100 world and pick the worst-case
    // neighbouring dataset by dataset sensitivity (Definition 6).
    let mut rng = seeded_rng(7);
    let data = generate_purchase(&mut rng, 300);
    let (train, _rest) = data.split_at(100);
    let neighbor = dataset_sensitivity_unbounded(&train, &Hamming);
    println!(
        "\ndataset-sensitivity search picked record #{:?} (score {:.0} bits)",
        neighbor.spec, neighbor.score
    );
    let pair = NeighborPair::from_spec(&train, &neighbor.spec);

    // ---------------------------------------------------------------- 3 ---
    // Calibrate DPSGD for 30 full-batch steps under RDP composition and
    // train, scaling noise to the estimated local sensitivity (Eq. 18).
    let steps = 30;
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, steps);
    let cfg = DpsgdConfig::new(
        3.0,   // clipping norm C
        0.005, // learning rate
        steps,
        NeighborMode::Unbounded,
        z,
        SensitivityScaling::Local,
    );
    println!("\ncalibrated noise multiplier z = {z:.2} for k = {steps} steps");

    let mut model = purchase_mlp(&mut rng);
    let mut adversary = GaussianBelief::new(NeighborMode::Unbounded);
    let mut sigmas = Vec::new();
    let mut local_sens = Vec::new();
    train_dpsgd(&mut model, &pair, true, &cfg, &mut rng, |record| {
        adversary.observe(&record, true);
        sigmas.push(record.sigma);
        local_sens.push(record.local_sensitivity);
    });

    // ---------------------------------------------------------------- 4 ---
    // Audit: the adversary's belief must respect rho_beta, and the three
    // empirical epsilon estimators of section 6.4 report the realised loss.
    let belief = adversary.score_d();
    println!("\nadversary's final belief in D: {belief:.3} (bound: {rho_beta_target})");
    println!(
        "adversary decides: {}",
        if adversary.decide_d() { "D" } else { "D'" }
    );

    let eps_ls = LocalSensitivityEstimator::per_trial(&sigmas, &local_sens, delta, cfg.ls_floor);
    let eps_beta = MaxBeliefEstimator::from_max_belief(belief);
    println!("\nempirical epsilon from per-step sensitivities: {eps_ls:.3} (target {epsilon:.3})");
    println!("empirical epsilon from this run's belief:      {eps_beta:.3}");
    println!("\nscaled to local sensitivity, the realised loss matches the target —");
    println!("no utility was wasted on oversized noise.");
}

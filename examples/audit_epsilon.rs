//! Auditing a claimed ε: did the training *really* spend its budget?
//!
//! A vendor claims "this model was trained with (2.2, 1e-3)-DP". Two
//! different trainings can both satisfy that claim while realising very
//! different actual privacy loss: one scales noise to the realised local
//! sensitivity (budget fully used, best utility), the other to the global
//! clipping bound (noise oversized, utility wasted). This example runs both
//! and applies all three ε′ estimators of the paper's §6.4 to tell them
//! apart.
//!
//! ```sh
//! cargo run --release --example audit_epsilon
//! ```

use dp_identifiability::prelude::*;

fn audit(scaling: SensitivityScaling, label: &str) {
    let (rho_beta_target, delta, steps, reps) = (0.90, 1e-2, 30, 20);
    let epsilon = epsilon_for_rho_beta(rho_beta_target);
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, steps);

    // World: synthetic Purchase-100, worst-case bounded neighbour.
    let mut rng = seeded_rng(23);
    let data = generate_purchase(&mut rng, 300);
    let (train, pool) = data.split_at(120);
    let best = bounded_candidates(&train, &pool, &Hamming, 1, true).remove(0);
    let pair = NeighborPair::from_spec(&train, &best.spec);

    let settings = TrialSettings::builder()
        .mode(NeighborMode::Bounded)
        .steps(steps)
        .noise_multiplier(z)
        .scaling(scaling)
        .build()
        .expect("valid trial settings");
    let batch = run_di_trials(&pair, &settings, None, purchase_mlp, reps, 31);

    // Estimator 1: from the per-step sensitivities (needs one transcript).
    let t = &batch.trials[0];
    let eps_ls = LocalSensitivityEstimator::per_trial(
        &t.sigmas,
        &t.local_sensitivities,
        delta,
        settings.dpsgd.ls_floor,
    );
    // Estimator 2: from the maximum belief across repetitions.
    let eps_beta = MaxBeliefEstimator::from_max_belief(batch.max_score());
    // Estimator 3: from the empirical advantage across repetitions.
    let eps_adv = AdvantageEstimator::from_advantage(batch.advantage(), delta);

    println!("-- noise scaled to {label} --");
    println!("   claimed epsilon:                {epsilon:.3}");
    println!("   eps' from per-step sensitivities: {eps_ls:.3}");
    println!("   eps' from max belief ({reps} reps):   {eps_beta:.3}");
    println!("   eps' from advantage  ({reps} reps):   {eps_adv:.3}");
    println!(
        "   (advantage {:+.3}, max belief {:.3})\n",
        batch.advantage(),
        batch.max_score()
    );
}

fn main() {
    println!("Auditing a claimed (2.2, 1e-2)-DP training, 20 repetitions each\n");
    audit(
        SensitivityScaling::Local,
        "estimated local sensitivity (Eq. 17)",
    );
    audit(SensitivityScaling::Global, "global sensitivity 2C");
    println!("Reading guide: under local scaling the estimators come close to the");
    println!("claimed budget — the guarantee is tight. Under global scaling they sit");
    println!("well below it: the training added more noise than the data required,");
    println!("sacrificing utility without buying additional protection. The");
    println!("belief/advantage estimators are Monte-Carlo estimates; at 20 reps they");
    println!("carry visible sampling error (the paper uses 250).");
}

//! Multi-party (federated) private training with secure aggregation, and
//! what an honest-but-curious participant can still learn.
//!
//! Five hospitals jointly train the Purchase-style MLP. Each round every
//! hospital submits its clipped per-example gradient sum; the server
//! aggregates (secure aggregation: individual sums never leave the
//! clients), perturbs the total with record-level DP noise, and broadcasts
//! the update. We report the accountant's (ε, δ), translate it to the
//! identifiability scores, and contrast it with the non-private run.
//!
//! ```sh
//! cargo run --release --example multi_party_training
//! ```

use dp_identifiability::dpsgd::train_federated;
use dp_identifiability::prelude::*;

fn main() {
    let mut rng = seeded_rng(37);
    let data = generate_purchase(&mut rng, 550);
    let (shard_data, test) = data.split_at(500);

    // Partition across five hospitals of different sizes.
    let sizes = [150, 125, 100, 75, 50];
    let mut shards = Vec::new();
    let mut offset = 0;
    for &n in &sizes {
        shards.push(shard_data.slice(offset, offset + n));
        offset += n;
    }
    println!(
        "5 parties, {} records total, shard sizes {sizes:?}\n",
        shard_data.len()
    );

    let delta = 1e-3;
    for (label, z) in [
        ("strong privacy (z = 15)", 15.0),
        ("negligible noise (z = 0.01)", 0.01),
    ] {
        let cfg = FederatedConfig::new(ClippingStrategy::Flat(3.0), 0.1, 60, z);
        let mut model = purchase_mlp(&mut seeded_rng(1));
        let mut last_loss = f64::NAN;
        let outcome = train_federated(&mut model, &shards, &cfg, &mut seeded_rng(2), |round| {
            last_loss = round.mean_loss;
        });
        let eps = outcome.epsilon(delta);
        println!("-- {label}: {} rounds --", cfg.rounds);
        println!("   accountant: eps = {eps:.2} at delta = {delta}");
        println!(
            "   identifiability: rho_beta = {:.3}, rho_alpha = {:.3}",
            rho_beta(eps.min(700.0)),
            rho_alpha(eps.min(700.0), delta)
        );
        println!(
            "   final training loss {last_loss:.3}, test accuracy {:.3} (chance {:.3})",
            model.accuracy(&test.xs, &test.ys),
            1.0 / 100.0
        );
        println!();
    }

    println!("Reading guide: secure aggregation hides who contributed what, but the");
    println!("broadcast update is exactly the mechanism output the DI adversary of");
    println!("the paper consumes — the DP noise, not the aggregation, is what caps");
    println!("an insider's posterior belief at rho_beta.");
}

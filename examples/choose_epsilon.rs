//! Choosing ε for a compliance conversation.
//!
//! Privacy regulations reason about *individual identifiability*, not ε.
//! This example prints the translation tables a data-protection officer and
//! a data scientist can actually discuss: identifiability targets on one
//! side, (ε, δ), noise multipliers and expected re-identification rates on
//! the other — including how the budget degrades with more training steps
//! and what sequential composition would have cost instead of RDP.
//!
//! ```sh
//! cargo run --release --example choose_epsilon
//! ```

use dp_identifiability::prelude::*;

fn main() {
    let delta = 1e-3;

    println!("== From identifiability to epsilon (Eq. 10 / Theorem 2, delta = {delta}) ==\n");
    println!(
        "{:>28}  {:>8}  {:>10}  {:>12}",
        "policy statement", "rho_beta", "epsilon", "rho_alpha"
    );
    for (label, rho_beta_target) in [
        ("barely beats a coin flip", 0.55),
        ("plausible deniability", 0.75),
        ("paper's working point", 0.90),
        ("near-certain identification", 0.99),
    ] {
        let eps = epsilon_for_rho_beta(rho_beta_target);
        println!(
            "{label:>28}  {rho_beta_target:>8.2}  {eps:>10.3}  {:>12.3}",
            rho_alpha(eps, delta)
        );
    }

    println!("\n== What the budget costs in noise, by training length (rho_beta = 0.9) ==\n");
    let eps = epsilon_for_rho_beta(0.90);
    println!(
        "{:>6}  {:>12}  {:>14}  {:>22}",
        "steps", "z (RDP)", "z (sequential)", "advantage at z (RDP)"
    );
    for k in [1usize, 10, 30, 100, 300] {
        let z_rdp = calibrate_noise_multiplier_closed_form(eps, delta, k);
        let plan_seq = NoisePlan::new(
            DpGuarantee::new(eps, delta),
            k,
            1.0,
            NoiseCalibration::ClassicPerStep,
        );
        println!(
            "{k:>6}  {z_rdp:>12.2}  {:>14.2}  {:>22.3}",
            plan_seq.noise_multiplier,
            rho_alpha_composed(z_rdp, k)
        );
    }

    println!("\n== Reverse direction: a tolerable re-identification rate picks epsilon ==\n");
    println!(
        "{:>22}  {:>10}  {:>9}",
        "max advantage rho_a", "epsilon", "rho_beta"
    );
    for adv in [0.01, 0.05, 0.12, 0.23, 0.5] {
        let eps = epsilon_for_rho_alpha(adv, delta);
        println!("{adv:>22.2}  {eps:>10.3}  {:>9.3}", rho_beta(eps));
    }

    println!("\nReading guide: rho_beta bounds the adversary's certainty about one");
    println!("person; rho_alpha bounds how often such an adversary is right across");
    println!("many attempts. Either can anchor the compliance conversation; both");
    println!("translate exactly to the (epsilon, delta) DPSGD needs.");
}

//! Production-style training: Poisson-subsampled mini-batch DPSGD with
//! privacy-amplification accounting, plus the identifiability translation.
//!
//! The audit experiments of the paper run full-batch gradient descent (the
//! DI adversary's side knowledge demands it), but a deployed system trains
//! with mini-batches and claims the *amplified* budget from the subsampled
//! RDP accountant. This example trains the synthetic MNIST CNN both ways at
//! the same noise multiplier and reports what each run costs in ε — and
//! what that ε means as ρ_β / ρ_α.
//!
//! ```sh
//! cargo run --release --example minibatch_training
//! ```

use dp_identifiability::dpsgd::{train_minibatch_dpsgd, ClippingStrategy, MinibatchConfig};
use dp_identifiability::prelude::*;

fn main() {
    let mut rng = seeded_rng(29);
    let data = generate_mnist(&mut rng, 400);
    let (train, test) = data.split_at(300);
    let delta = 1e-3;

    // A modest noise multiplier; what it costs depends on how we batch.
    let z = 1.1;
    let steps = 60;
    let q = 0.1; // expected batch: 30 of 300 records

    println!(
        "synthetic MNIST, |D| = {}, z = {z}, {steps} steps\n",
        train.len()
    );

    // -- mini-batch with Poisson subsampling ------------------------------
    let cfg = MinibatchConfig::new(ClippingStrategy::Flat(3.0), 0.05, steps, q, z);
    let mut model = mnist_cnn(&mut rng);
    let outcome = train_minibatch_dpsgd(&mut model, &train, &cfg, &mut rng);
    let eps_amplified = outcome.epsilon(delta);
    let acc = model.accuracy(&test.xs, &test.ys);
    let mean_batch =
        outcome.batch_sizes.iter().sum::<usize>() as f64 / outcome.batch_sizes.len() as f64;
    println!("mini-batch (q = {q}, mean batch {mean_batch:.1}):");
    println!("  eps = {eps_amplified:.3} at delta = {delta} (subsampled RDP)");
    println!(
        "  identifiability: rho_beta = {:.3}, rho_alpha = {:.3}",
        rho_beta(eps_amplified),
        rho_alpha(eps_amplified, delta)
    );
    println!("  test accuracy: {acc:.3} (chance 0.1)");

    // -- the same noise, full batch ---------------------------------------
    let mut acc_full = RdpAccountant::new();
    acc_full.add_gaussian_steps(z, steps);
    let eps_full = acc_full.epsilon(delta).0;
    println!("\nfull batch at the same z (accounting only):");
    println!("  eps = {eps_full:.3} at delta = {delta}");
    println!(
        "  identifiability: rho_beta = {:.3}, rho_alpha = {:.3}",
        rho_beta(eps_full),
        rho_alpha(eps_full.min(500.0), delta)
    );

    println!(
        "\namplification factor: {:.1}x less privacy loss for the mini-batch run.",
        eps_full / eps_amplified
    );
    println!("Subsampling buys privacy; the identifiability scores make the");
    println!("difference legible: a near-certain adversary vs one barely beyond a");
    println!("coin flip, from the same noise level.");
}

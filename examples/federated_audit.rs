//! Federated-learning audit: the scenario that makes A_DI realistic.
//!
//! In federated learning every participant observes the model updates of
//! every round (paper §6.1/§7). A malicious participant who knows all
//! training records except one — e.g. because the dataset extends a public
//! reference corpus with a single custom record — *is* the DP adversary.
//! This example plays both roles: an honest aggregator trains with DPSGD at
//! two different privacy levels, and the insider runs the belief update of
//! Algorithm 1 round by round, printing its certainty trajectory.
//!
//! ```sh
//! cargo run --release --example federated_audit
//! ```

use dp_identifiability::prelude::*;

fn run_round_trip(rho_beta_target: f64, train: &Dataset, seed: u64) {
    let delta = 1e-3;
    let epsilon = epsilon_for_rho_beta(rho_beta_target);
    let steps = 30;
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, steps);

    // The insider targets the record it does NOT know: the dataset-
    // sensitivity maximiser (the most distinctive member).
    let target = dataset_sensitivity_unbounded(train, &NegSsim);
    let pair = NeighborPair::from_spec(train, &target.spec);

    let cfg = DpsgdConfig::new(
        3.0,
        0.005,
        steps,
        NeighborMode::Unbounded,
        z,
        SensitivityScaling::Local,
    );

    let mut rng = seeded_rng(seed);
    let mut model = mnist_cnn(&mut rng);
    let mut insider = GaussianBelief::new(NeighborMode::Unbounded);
    train_dpsgd(&mut model, &pair, true, &cfg, &mut rng, |record| {
        insider.observe(&record, true);
    });

    println!("-- privacy target rho_beta = {rho_beta_target} (epsilon = {epsilon:.2}) --");
    let history = insider.history();
    for (i, beta) in history.iter().enumerate() {
        if i % 6 == 0 || i + 1 == history.len() {
            let bar_len = (beta * 40.0).round() as usize;
            println!("  round {i:>2}: belief {beta:.3} {}", "#".repeat(bar_len));
        }
    }
    println!(
        "  final certainty: {:.1}% (bound: {:.1}%) -> target record {}\n",
        insider.score_d() * 100.0,
        rho_beta_target * 100.0,
        if insider.decide_d() {
            "EXPOSED (guess: present)"
        } else {
            "deniable (guess: absent)"
        },
    );
}

fn main() {
    println!("Federated-learning insider audit (synthetic MNIST, |D| = 100)\n");
    let mut rng = seeded_rng(11);
    let train = generate_mnist(&mut rng, 100);

    // A permissive budget: the insider's certainty is allowed to reach 99%.
    run_round_trip(0.99, &train, 101);
    // The paper's headline budget: certainty capped at 90%.
    run_round_trip(0.90, &train, 101);
    // A conservative budget: the insider may barely beat a coin flip.
    run_round_trip(0.55, &train, 101);

    println!("Same training data, same insider — only epsilon changed.");
    println!("rho_beta turns the abstract budget into the insider's maximum certainty.");
}

//! Identifiability auditing for classic DP *database queries* — the setting
//! the identifiability scores were born in (Lee–Clifton differential
//! identifiability), before the paper lifted them to deep learning.
//!
//! An analyst releases a sequence of noisy aggregate queries (counts and
//! capped sums) over a customer table. The DI adversary knows every row
//! except whether one specific customer is present, observes every release,
//! and updates its belief exactly as in Lemma 1. The demo shows composition
//! eating the budget release by release, and the ρ_β bound holding
//! throughout.
//!
//! ```sh
//! cargo run --release --example database_query_audit
//! ```

use dp_identifiability::dp::LaplaceMechanism;
use dp_identifiability::prelude::*;

/// A customer row: spend in currency units plus a premium flag.
#[derive(Clone, Copy)]
struct Row {
    spend: f64,
    premium: bool,
}

/// `SELECT count(*) WHERE premium` — unbounded-DP sensitivity 1.
fn premium_count(rows: &[Row]) -> f64 {
    rows.iter().filter(|r| r.premium).count() as f64
}

/// `SELECT sum(min(spend, cap))` — unbounded-DP sensitivity `cap`.
fn total_spend(rows: &[Row], spend_cap: f64) -> f64 {
    rows.iter().map(|r| r.spend.min(spend_cap)).sum()
}

fn main() {
    let mut rng = seeded_rng(17);

    // The customer table; the challenge row is a premium big-spender whose
    // presence the adversary wants to establish.
    let mut rows: Vec<Row> = (0..200)
        .map(|i| Row {
            spend: 10.0 + (i % 37) as f64 * 2.5,
            premium: i % 5 == 0,
        })
        .collect();
    rows.push(Row {
        spend: 95.0,
        premium: true,
    });
    let rows_without: Vec<Row> = rows[..rows.len() - 1].to_vec();

    // Budget: posterior belief capped at 0.75 over the whole query session.
    let rho_beta_target = 0.75;
    let total_eps = epsilon_for_rho_beta(rho_beta_target);
    let releases = 6; // alternating counts and sums
    let eps_per_release = total_eps / releases as f64;
    let spend_cap = 100.0;
    println!("query-session budget: rho_beta = {rho_beta_target} -> total eps = {total_eps:.3}");
    println!("{releases} releases, sequential composition: eps_i = {eps_per_release:.4}\n");

    let count_mech = LaplaceMechanism::calibrate(eps_per_release, 1.0);
    let spend_mech = LaplaceMechanism::calibrate(eps_per_release, spend_cap);

    // The adversary tracks its belief across releases (Lemma 1).
    let mut tracker = BeliefTracker::new();
    println!(
        "{:>3}  {:>14}  {:>10}  {:>10}  {:>8}",
        "i", "query", "truth", "released", "belief"
    );
    for i in 0..releases {
        let (name, truth_with, truth_without, mech) = if i % 2 == 0 {
            (
                "count(premium)",
                premium_count(&rows),
                premium_count(&rows_without),
                &count_mech,
            )
        } else {
            (
                "sum(spend)",
                total_spend(&rows, spend_cap),
                total_spend(&rows_without, spend_cap),
                &spend_mech,
            )
        };
        let released = mech.perturb(&mut rng, &[truth_with])[0];
        tracker.update_llr(
            mech.log_density(&[released], &[truth_with])
                - mech.log_density(&[released], &[truth_without]),
        );
        println!(
            "{i:>3}  {name:>14}  {truth_with:>10.1}  {released:>10.1}  {:>8.4}",
            tracker.belief()
        );
    }

    println!(
        "\nfinal belief {:.4} vs bound rho_beta({total_eps:.3}) = {rho_beta_target}",
        tracker.belief()
    );
    assert!(
        tracker.belief() <= rho_beta_target + 1e-9,
        "the Theorem 1 bound must hold for pure eps-DP Laplace releases"
    );
    println!(
        "empirical eps' from this session: {:.3} (budget {total_eps:.3})",
        MaxBeliefEstimator::from_max_belief(tracker.belief().max(0.5))
    );
    println!("\nThe bound is a worst case over outputs: a typical session stays below");
    println!("it, and no session of eps-DP Laplace releases can ever exceed it.");
}

//! Integration tests for the extension features (DESIGN.md "optional /
//! future-work" items): the analytic Gaussian mechanism, KOV optimal
//! composition, per-layer and adaptive clipping, DP-Adam, the federated and
//! mini-batch trainers, and the scalar-query experiment — all exercised
//! through the umbrella crate's public API.

use dp_identifiability::dpsgd::{
    train_federated, train_minibatch_dpsgd, MinibatchConfig, Optimizer,
};
use dp_identifiability::prelude::*;

#[test]
fn analytic_mechanism_tightens_the_whole_pipeline() {
    // The same (ε, δ) target with the analytic σ instead of the classic one
    // means less noise at identical guarantees: the expected advantage of
    // the midpoint test strictly grows but stays below ρ_α.
    let (eps, delta) = (1.0, 1e-5);
    let classic = GaussianMechanism::calibrate(DpGuarantee::new(eps, delta), 1.0).sigma;
    let analytic = analytic_gaussian_sigma(eps, delta, 1.0);
    assert!(analytic < classic);
    let adv = |sigma: f64| 2.0 * dp_identifiability::math::phi(1.0 / (2.0 * sigma)) - 1.0;
    assert!(adv(analytic) > adv(classic));
    // ρ_α is derived from the classic calibration, so the analytic
    // mechanism may exceed it slightly — but never the generic e^ε − 1.
    assert!(adv(analytic) < eps.exp() - 1.0);
}

#[test]
fn kov_frontier_integrates_with_rho_beta() {
    // A data owner running 50 small Laplace queries: the KOV-certified ε
    // translates to a visibly smaller belief bound than naive addition.
    let per_query_eps = 0.05;
    let naive_eps = 50.0 * per_query_eps;
    let kov_eps = kov_optimal_epsilon(per_query_eps, 0.0, 50, 1e-6);
    assert!(kov_eps < naive_eps);
    assert!(rho_beta(kov_eps) < rho_beta(naive_eps));
}

#[test]
fn per_layer_clipping_runs_the_reference_mlp() {
    let mut rng = seeded_rng(1);
    let data = generate_purchase(&mut rng, 20);
    let target = dataset_sensitivity_unbounded(&data, &Hamming);
    let pair = NeighborPair::from_spec(&data, &target.spec);
    let mut model = purchase_mlp(&mut rng);
    let layout = model.param_layout();
    assert_eq!(layout.len(), 2); // two dense layers carry parameters
    let cfg = dp_identifiability::dpsgd::DpsgdConfig::with_clipping(
        ClippingStrategy::PerLayer(vec![2.0, 1.0]),
        0.005,
        2,
        NeighborMode::Unbounded,
        5.0,
        SensitivityScaling::Local,
    );
    let t = dp_identifiability::dpsgd::train_collect(&mut model, &pair, true, &cfg, &mut rng);
    let bound = (2.0f64 * 2.0 + 1.0).sqrt();
    assert!((cfg.clip_bound() - bound).abs() < 1e-12);
    for s in &t.steps {
        assert!(dp_identifiability::math::l2_norm(&s.grad_x1) <= bound + 1e-9);
    }
}

#[test]
fn adam_and_sgd_share_the_privacy_account() {
    // Identical configs except the optimizer: identical σ series (privacy
    // is untouched), different final weights (utility path differs).
    let mut rng = seeded_rng(2);
    let data = generate_purchase(&mut rng, 15);
    let target = dataset_sensitivity_unbounded(&data, &Hamming);
    let pair = NeighborPair::from_spec(&data, &target.spec);
    let mut cfg = dp_identifiability::dpsgd::DpsgdConfig::new(
        3.0,
        0.01,
        3,
        NeighborMode::Unbounded,
        2.0,
        SensitivityScaling::Global,
    );
    let run = |cfg: &dp_identifiability::dpsgd::DpsgdConfig| {
        let mut model = purchase_mlp(&mut seeded_rng(3));
        let t = dp_identifiability::dpsgd::train_collect(
            &mut model,
            &pair,
            true,
            cfg,
            &mut seeded_rng(4),
        );
        (t.sigmas(), model.params())
    };
    let (sigmas_sgd, params_sgd) = run(&cfg);
    cfg.optimizer = Optimizer::adam();
    let (sigmas_adam, params_adam) = run(&cfg);
    assert_eq!(sigmas_sgd, sigmas_adam);
    assert_ne!(params_sgd, params_adam);
}

#[test]
fn minibatch_epsilon_is_amplified_vs_full_batch() {
    let mut rng = seeded_rng(5);
    let data = generate_purchase(&mut rng, 100);
    let mut model = purchase_mlp(&mut rng);
    let cfg = MinibatchConfig::new(ClippingStrategy::Flat(3.0), 0.005, 20, 0.1, 1.0);
    let out = train_minibatch_dpsgd(&mut model, &data, &cfg, &mut rng);
    let amplified = out.epsilon(1e-3);
    let mut full = RdpAccountant::new();
    full.add_gaussian_steps(1.0, 20);
    let full_eps = full.epsilon(1e-3).0;
    assert!(
        amplified < full_eps / 3.0,
        "amplified {amplified} vs full {full_eps}"
    );
    // And the identifiability translation is well defined for both.
    assert!(rho_beta(amplified) < rho_beta(full_eps));
}

#[test]
fn federated_insider_is_the_di_adversary() {
    // One shard per party; the broadcast noisy totals feed the same
    // BeliefTracker the DPSGD adversary uses, and the belief respects the
    // accountant's translated ρ_β at this noise level.
    let mut rng = seeded_rng(6);
    let data = generate_purchase(&mut rng, 30);
    let (a, rest) = data.split_at(10);
    let (b, c) = rest.split_at(10);
    let shards = vec![a, b, c];
    let cfg = FederatedConfig::new(ClippingStrategy::Flat(3.0), 0.005, 5, 10.0);
    let mut model = purchase_mlp(&mut rng);
    let mut tracker = BeliefTracker::new();
    let out = train_federated(&mut model, &shards, &cfg, &mut rng, |round| {
        // Insider hypothesis: the union vs the union minus one known record.
        // The removed record's clipped gradient is at most C, so use the
        // noisy total against a synthetic shifted center at distance C.
        let mut shifted = round.clean_total.clone();
        shifted[0] += 3.0;
        tracker.update_gaussian(
            &round.noisy_total,
            &round.clean_total,
            &shifted,
            round.sigma,
        );
    });
    let eps = out.epsilon(1e-3);
    // Worst-case belief bound for the composed budget must hold.
    assert!(tracker.belief() <= rho_beta(eps) + 1e-9);
}

#[test]
fn scalar_queries_and_dpsgd_share_audit_machinery() {
    // A Gaussian scalar-query batch audited with the same estimator used
    // for DPSGD transcripts.
    let mech = GaussianMechanism::new(10.0);
    let queries: Vec<ScalarQuery> = (0..5)
        .map(|_| ScalarQuery::new(vec![0.0], vec![2.0], ScalarMechanism::Gaussian(mech)))
        .collect();
    let batch = run_scalar_di_trials(&queries, 10, 7);
    let t = &batch.trials[0];
    let eps = LocalSensitivityEstimator::per_trial(&t.sigmas, &t.local_sensitivities, 1e-5, 1e-9);
    // Effective z = 10/2 = 5 over 5 steps.
    let mut acc = RdpAccountant::new();
    acc.add_gaussian_steps(5.0, 5);
    assert!((eps - acc.epsilon(1e-5).0).abs() < 1e-9);
}

#[test]
fn audit_report_round_trips_through_json() {
    let mut rng = seeded_rng(8);
    let data = generate_purchase(&mut rng, 15);
    let target = dataset_sensitivity_unbounded(&data, &Hamming);
    let pair = NeighborPair::from_spec(&data, &target.spec);
    let settings = TrialSettings::builder()
        .clip_norm(3.0)
        .learning_rate(0.005)
        .steps(2)
        .mode(NeighborMode::Unbounded)
        .noise_multiplier(5.0)
        .scaling(SensitivityScaling::Local)
        .challenge(ChallengeMode::RandomBit)
        .build()
        .expect("valid trial settings");
    let batch = run_di_trials(&pair, &settings, None, purchase_mlp, 4, 9);
    let report = AuditReport::from_batch(&batch, 2.2, 1e-2, settings.dpsgd.ls_floor);
    if report.eps_from_advantage.is_finite() {
        let json = serde_json::to_string(&report).unwrap();
        let back: AuditReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.trials, 4);
    }
    assert!(report.budget_utilisation() > 0.0);
}

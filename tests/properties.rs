//! Cross-crate property-based tests of the paper's core invariants.

use dp_identifiability::math::{phi, sigmoid};
use dp_identifiability::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Eq. 10 round trip: ε → ρ_β → ε.
    #[test]
    fn rho_beta_inversion_round_trip(eps in 0.001..20.0f64) {
        let rho = rho_beta(eps);
        prop_assert!(rho > 0.5 && rho < 1.0);
        let back = epsilon_for_rho_beta(rho);
        prop_assert!((back - eps).abs() < 1e-6 * (1.0 + eps));
    }

    /// Theorem 2 round trip: ε → ρ_α → ε, across δ.
    #[test]
    fn rho_alpha_inversion_round_trip(
        eps in 0.01..15.0f64,
        log_delta in -9.0..-1.0f64,
    ) {
        let delta = 10f64.powf(log_delta);
        let rho = rho_alpha(eps, delta);
        let back = epsilon_for_rho_alpha(rho, delta);
        prop_assert!((back - eps).abs() < 1e-6 * (1.0 + eps), "{back} vs {eps}");
    }

    /// ρ_β and ρ_α are monotone in ε.
    #[test]
    fn scores_monotone_in_epsilon(eps in 0.01..10.0f64, bump in 0.01..5.0f64) {
        prop_assert!(rho_beta(eps + bump) > rho_beta(eps));
        prop_assert!(rho_alpha(eps + bump, 1e-3) > rho_alpha(eps, 1e-3));
    }

    /// Noise calibration round trip: (ε, δ, k) → z → ε.
    #[test]
    fn calibration_round_trip(
        eps in 0.05..10.0f64,
        log_delta in -8.0..-1.5f64,
        k in 1usize..200,
    ) {
        let delta = 10f64.powf(log_delta);
        let z = calibrate_noise_multiplier_closed_form(eps, delta, k);
        prop_assert!(z > 0.0);
        let back = dp_identifiability::dp::gaussian_rdp_epsilon_closed_form(z, k, delta);
        prop_assert!((back - eps).abs() / eps < 1e-9, "{back} vs {eps}");
    }

    /// More steps at fixed (ε, δ) always require more noise per step.
    #[test]
    fn more_steps_more_noise(eps in 0.1..5.0f64, k in 1usize..100) {
        let z1 = calibrate_noise_multiplier_closed_form(eps, 1e-3, k);
        let z2 = calibrate_noise_multiplier_closed_form(eps, 1e-3, k + 1);
        prop_assert!(z2 > z1);
    }

    /// The grid accountant never reports less than the closed-form optimum
    /// (it minimises over a discrete subset of orders).
    #[test]
    fn grid_accountant_dominates_closed_form(
        z in 0.3..50.0f64,
        k in 1usize..100,
        log_delta in -8.0..-1.5f64,
    ) {
        let delta = 10f64.powf(log_delta);
        let mut acc = RdpAccountant::new();
        acc.add_gaussian_steps(z, k);
        let (grid, _) = acc.epsilon(delta);
        let closed = dp_identifiability::dp::gaussian_rdp_epsilon_closed_form(z, k, delta);
        prop_assert!(grid >= closed - 1e-9, "grid {grid} below closed form {closed}");
        prop_assert!(grid <= closed * 1.10, "grid {grid} too loose vs {closed}");
    }

    /// Belief tracking is exactly additive in log-odds: folding the same
    /// evidence in any grouping gives the same posterior.
    #[test]
    fn belief_updates_compose(llrs in proptest::collection::vec(-50.0..50.0f64, 1..40)) {
        let mut one = BeliefTracker::new();
        for &l in &llrs {
            one.update_llr(l);
        }
        let mut total = BeliefTracker::new();
        total.update_llr(llrs.iter().sum());
        prop_assert!((one.log_odds() - total.log_odds()).abs() < 1e-9);
        prop_assert_eq!(one.belief(), sigmoid(one.log_odds()));
    }

    /// The Gaussian belief update equals the analytic log-likelihood ratio.
    #[test]
    fn gaussian_update_matches_analytic_llr(
        r in proptest::collection::vec(-5.0..5.0f64, 3),
        cd in proptest::collection::vec(-5.0..5.0f64, 3),
        cdp in proptest::collection::vec(-5.0..5.0f64, 3),
        sigma in 0.1..10.0f64,
    ) {
        let mut t = BeliefTracker::new();
        t.update_gaussian(&r, &cd, &cdp, sigma);
        let mech = GaussianMechanism::new(sigma);
        let expect = mech.log_likelihood_ratio(&r, &cd, &cdp);
        prop_assert!((t.log_odds() - expect).abs() < 1e-9);
    }

    /// Clipping: never increases a norm, never changes direction, is
    /// idempotent.
    #[test]
    fn clipping_invariants(
        g in proptest::collection::vec(-10.0..10.0f64, 1..50),
        c in 0.01..10.0f64,
    ) {
        use dp_identifiability::dpsgd::clip_to_norm;
        use dp_identifiability::math::l2_norm;
        let mut clipped = g.clone();
        clip_to_norm(&mut clipped, c);
        prop_assert!(l2_norm(&clipped) <= c + 1e-9);
        // Direction preserved: clipped is a non-negative multiple of g.
        let gn = l2_norm(&g);
        if gn > 0.0 {
            let scale = l2_norm(&clipped) / gn;
            for (a, b) in clipped.iter().zip(&g) {
                prop_assert!((a - b * scale).abs() < 1e-9);
            }
        }
        let mut twice = clipped.clone();
        clip_to_norm(&mut twice, c);
        for (a, b) in twice.iter().zip(&clipped) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// ρ_α under composition is invariant to how the budget is split:
    /// k steps at z ≡ 1 step at z/√k.
    #[test]
    fn rho_alpha_composition_invariance(z in 0.5..50.0f64, k in 1usize..200) {
        let a = rho_alpha_composed(z, k);
        let b = rho_alpha_composed(z / (k as f64).sqrt(), 1);
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// Theorem 2 consistency: the advantage of the midpoint test at the
    /// classically calibrated σ equals ρ_α exactly.
    #[test]
    fn theorem2_midpoint_consistency(eps in 0.05..8.0f64, log_delta in -8.0..-1.5f64) {
        let delta = 10f64.powf(log_delta);
        let mech = GaussianMechanism::calibrate(DpGuarantee::new(eps, delta), 1.0);
        // Adv of the likelihood-ratio test between centers at distance 1:
        // 2Φ(Δ/2) − 1 with Δ = 1/σ.
        let adv = 2.0 * phi(1.0 / (2.0 * mech.sigma)) - 1.0;
        prop_assert!((adv - rho_alpha(eps, delta)).abs() < 1e-12);
    }

    /// Dataset neighbour construction: bounded keeps the size, unbounded
    /// shrinks by one, and only the specified index changes.
    #[test]
    fn neighbor_construction_invariants(n in 2usize..30, idx in 0usize..30) {
        let idx = idx % n;
        let mut rng = seeded_rng(42);
        let d = generate_purchase(&mut rng, n);
        let removed = d.neighbor(&NeighborSpec::Remove { index: idx });
        prop_assert_eq!(removed.len(), n - 1);
        let replacement = d.xs[(idx + 1) % n].clone();
        let replaced = d.neighbor(&NeighborSpec::Replace {
            index: idx,
            record: replacement,
            label: 3,
        });
        prop_assert_eq!(replaced.len(), n);
        for i in 0..n {
            if i != idx {
                prop_assert_eq!(&replaced.xs[i], &d.xs[i]);
            }
        }
    }
}

//! End-to-end integration tests across all crates: dataset generation →
//! dataset-sensitivity pair selection → noise calibration → DPSGD training →
//! DI adversary → ε′ auditing. Sizes are kept small so the suite runs in
//! seconds; the paper-scale shapes are exercised by the bench binaries.

use dp_identifiability::prelude::*;

fn tiny_purchase_world(seed: u64) -> (Dataset, Dataset) {
    let mut rng = seeded_rng(seed);
    let data = generate_purchase(&mut rng, 60);
    data.split_at(30)
}

#[test]
fn full_pipeline_bounded_local() {
    let (train, pool) = tiny_purchase_world(1);
    let best = bounded_candidates(&train, &pool, &Hamming, 1, true).remove(0);
    let pair = NeighborPair::from_spec(&train, &best.spec);
    assert_eq!(pair.mode, NeighborMode::Bounded);

    let delta = 1e-2;
    let epsilon = epsilon_for_rho_beta(0.90);
    let steps = 6;
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, steps);
    let settings = TrialSettings::builder()
        .clip_norm(3.0)
        .learning_rate(0.005)
        .steps(steps)
        .mode(NeighborMode::Bounded)
        .noise_multiplier(z)
        .scaling(SensitivityScaling::Local)
        .challenge(ChallengeMode::RandomBit)
        .build()
        .expect("valid trial settings");
    let batch = run_di_trials(&pair, &settings, None, purchase_mlp, 6, 99);
    assert_eq!(batch.trials.len(), 6);
    for t in &batch.trials {
        assert_eq!(t.belief_history.len(), steps);
        assert!(t.belief_d > 0.0 && t.belief_d < 1.0);
        assert!(t
            .local_sensitivities
            .iter()
            .all(|&l| (0.0..=6.0 + 1e-9).contains(&l)));
        // Local scaling: σᵢ = z·max(lsᵢ, floor).
        for (s, l) in t.sigmas.iter().zip(&t.local_sensitivities) {
            let expect = z * l.max(settings.dpsgd.ls_floor);
            assert!((s - expect).abs() < 1e-9);
        }
    }
    // Advantage is a valid number in [-1, 1].
    assert!(batch.advantage().abs() <= 1.0);
}

#[test]
fn full_pipeline_unbounded_global_and_audit() {
    let (train, _) = tiny_purchase_world(2);
    let target = dataset_sensitivity_unbounded(&train, &Hamming);
    let pair = NeighborPair::from_spec(&train, &target.spec);
    assert_eq!(pair.mode, NeighborMode::Unbounded);
    assert_eq!(pair.d_prime.len(), pair.d.len() - 1);

    let delta = 1e-2;
    let epsilon = epsilon_for_rho_beta(0.75);
    let steps = 5;
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, steps);
    let settings = TrialSettings::builder()
        .clip_norm(3.0)
        .learning_rate(0.005)
        .steps(steps)
        .mode(NeighborMode::Unbounded)
        .noise_multiplier(z)
        .scaling(SensitivityScaling::Global)
        .challenge(ChallengeMode::AlwaysD)
        .build()
        .expect("valid trial settings");
    let batch = run_di_trials(&pair, &settings, None, purchase_mlp, 4, 7);
    // Global scaling: σ constant = z·C.
    for t in &batch.trials {
        for s in &t.sigmas {
            assert!((s - z * 3.0).abs() < 1e-9);
        }
    }
    // Audit with the LS estimator: realised ls ≤ C, so ε′ ≤ target ε
    // (up to grid-conversion slack).
    let t = &batch.trials[0];
    let eps_prime =
        LocalSensitivityEstimator::per_trial(&t.sigmas, &t.local_sensitivities, delta, 1e-9);
    assert!(
        eps_prime <= epsilon * 1.05,
        "eps' {eps_prime} should not exceed target {epsilon}"
    );
}

#[test]
fn mnist_cnn_pipeline_smoke() {
    let mut rng = seeded_rng(3);
    let data = generate_mnist(&mut rng, 24);
    let (train, pool) = data.split_at(12);
    let best = bounded_candidates(&train, &pool, &NegSsim, 1, true).remove(0);
    let pair = NeighborPair::from_spec(&train, &best.spec);
    let settings = TrialSettings::builder()
        .clip_norm(3.0)
        .learning_rate(0.005)
        .steps(2)
        .mode(NeighborMode::Bounded)
        .noise_multiplier(5.0)
        .scaling(SensitivityScaling::Local)
        .challenge(ChallengeMode::AlwaysD)
        .build()
        .expect("valid trial settings");
    let trial = run_di_trial(&pair, &settings, Some(&pool), mnist_cnn, 13);
    assert!(trial.b);
    assert_eq!(trial.belief_history.len(), 2);
    let acc = trial.test_accuracy.unwrap();
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn adversary_dominates_under_vanishing_noise() {
    // With z → 0 the adversary must win essentially every challenge: this
    // is the ε → ∞ sanity corner of Experiment 2.
    let (train, pool) = tiny_purchase_world(4);
    let best = bounded_candidates(&train, &pool, &Hamming, 1, true).remove(0);
    let pair = NeighborPair::from_spec(&train, &best.spec);
    let settings = TrialSettings::builder()
        .clip_norm(3.0)
        .learning_rate(0.005)
        .steps(3)
        .mode(NeighborMode::Bounded)
        .noise_multiplier(1e-3)
        .scaling(SensitivityScaling::Local)
        .challenge(ChallengeMode::RandomBit)
        .build()
        .expect("valid trial settings");
    let batch = run_di_trials(&pair, &settings, None, purchase_mlp, 10, 5);
    assert_eq!(batch.success_rate(), 1.0);
    assert_eq!(batch.advantage(), 1.0);
}

#[test]
fn transcripts_are_deterministic_given_seeds() {
    let (train, _) = tiny_purchase_world(6);
    let target = dataset_sensitivity_unbounded(&train, &Hamming);
    let pair = NeighborPair::from_spec(&train, &target.spec);
    let cfg = DpsgdConfig::new(
        3.0,
        0.005,
        3,
        NeighborMode::Unbounded,
        4.0,
        SensitivityScaling::Local,
    );
    let run = |seed: u64| {
        let mut model = purchase_mlp(&mut seeded_rng(seed));
        let mut rng = seeded_rng(seed + 1);
        train_collect(&mut model, &pair, true, &cfg, &mut rng)
    };
    let a = run(10);
    let b = run(10);
    assert_eq!(a.steps.len(), b.steps.len());
    for (sa, sb) in a.steps.iter().zip(&b.steps) {
        assert_eq!(sa.noisy_sum, sb.noisy_sum);
        assert_eq!(sa.local_sensitivity, sb.local_sensitivity);
    }
    // Different noise seed → different released gradients.
    let c = run(11);
    assert_ne!(a.steps[0].noisy_sum, c.steps[0].noisy_sum);
}

#[test]
fn mi_adversary_weaker_than_di_on_same_run() {
    // Proposition 1's direction on a tiny run: the DI adversary decides
    // from the whole transcript, the MI adversary from the final model.
    let (train, pool) = tiny_purchase_world(8);
    let target = dataset_sensitivity_unbounded(&train, &Hamming);
    let pair = NeighborPair::from_spec(&train, &target.spec);
    let cfg = DpsgdConfig::new(
        3.0,
        0.005,
        4,
        NeighborMode::Unbounded,
        0.5,
        SensitivityScaling::Local,
    );
    let mut di_correct = 0;
    let mut mi_correct = 0;
    let reps = 8;
    for i in 0..reps {
        let mut model = purchase_mlp(&mut seeded_rng(100 + i));
        let mut rng = seeded_rng(200 + i);
        let b = i % 2 == 0;
        let mut di = GaussianBelief::new(NeighborMode::Unbounded);
        train_dpsgd(&mut model, &pair, b, &cfg, &mut rng, |r| di.observe(&r, b));
        if di.decide_d() == b {
            di_correct += 1;
        }
        let mi = MiAdversary::calibrated(&model, &pool);
        let trained = pair.trained_dataset(b);
        let mi_batch =
            dp_identifiability::core::run_mi_trials(&mi, &model, trained, &pool, 50, &mut rng);
        if mi_batch.advantage() > 0.5 {
            mi_correct += 1;
        }
    }
    // At this noise level DI should be near-perfect; MI rarely confident.
    assert!(di_correct >= reps - 1, "DI correct {di_correct}/{reps}");
    assert!(mi_correct <= di_correct);
}

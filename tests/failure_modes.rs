//! Failure-injection tests: the library must fail loudly and precisely on
//! malformed inputs rather than propagate silent numerical corruption —
//! wrong privacy parameters are worse than crashes in this domain.

use dp_identifiability::dpsgd::MinibatchConfig;
use dp_identifiability::prelude::*;

#[test]
#[should_panic(expected = "epsilon must be positive")]
fn negative_epsilon_calibration_panics() {
    calibrate_noise_multiplier_closed_form(-1.0, 1e-5, 10);
}

#[test]
#[should_panic(expected = "delta must be in")]
fn delta_one_guarantee_panics() {
    DpGuarantee::new(1.0, 1.0);
}

#[test]
#[should_panic(expected = "rho_beta must be in (0.5, 1)")]
fn rho_beta_below_prior_panics() {
    epsilon_for_rho_beta(0.4);
}

#[test]
#[should_panic(expected = "sigma must be positive")]
fn zero_sigma_belief_update_panics() {
    BeliefTracker::new().update_gaussian(&[0.0], &[0.0], &[1.0], 0.0);
}

#[test]
#[should_panic(expected = "center_d length")]
fn mismatched_center_dimensions_panic() {
    BeliefTracker::new().update_gaussian(&[0.0, 1.0], &[0.0], &[1.0, 0.0], 1.0);
}

#[test]
#[should_panic(expected = "empty training set")]
fn training_on_empty_dataset_panics() {
    let empty = Dataset::empty();
    let mut with_one = Dataset::empty();
    with_one.push(Tensor::full(&[600], 0.0), 0);
    // Unbounded pair whose D′ is empty: training on D′ must be rejected.
    let pair = NeighborPair {
        d: with_one,
        d_prime: empty,
        x1_index: 0,
        x2: None,
        mode: NeighborMode::Unbounded,
    };
    let cfg = DpsgdConfig::new(
        3.0,
        0.01,
        1,
        NeighborMode::Unbounded,
        1.0,
        SensitivityScaling::Local,
    );
    let mut model = purchase_mlp(&mut seeded_rng(1));
    train_dpsgd(&mut model, &pair, false, &cfg, &mut seeded_rng(2), |_| {});
}

#[test]
#[should_panic(expected = "label out of range")]
fn out_of_range_label_panics_in_forward() {
    let model = purchase_mlp(&mut seeded_rng(3));
    let x = Tensor::full(&[600], 0.5);
    model.per_example_grad(&x, 100); // valid labels are 0..100
}

#[test]
#[should_panic(expected = "Dense: input length")]
fn wrong_input_dimension_panics() {
    let model = purchase_mlp(&mut seeded_rng(4));
    model.forward(&Tensor::full(&[599], 0.5));
}

#[test]
#[should_panic(expected = "sampling rate must be in")]
fn minibatch_rate_above_one_panics() {
    MinibatchConfig::new(ClippingStrategy::Flat(1.0), 0.1, 1, 1.5, 1.0);
}

#[test]
#[should_panic(expected = "replace index out of range")]
fn neighbor_spec_out_of_range_panics() {
    let mut d = Dataset::empty();
    d.push(Tensor::full(&[3], 0.0), 0);
    d.neighbor(&NeighborSpec::Replace {
        index: 5,
        record: Tensor::full(&[3], 1.0),
        label: 0,
    });
}

#[test]
#[should_panic(expected = "belief must be in [0, 1]")]
fn belief_estimator_rejects_out_of_range() {
    MaxBeliefEstimator::from_max_belief(1.5);
}

#[test]
#[should_panic(expected = "floor must be positive")]
fn ls_estimator_rejects_zero_floor() {
    LocalSensitivityEstimator::per_trial(&[1.0], &[1.0], 1e-5, 0.0);
}

#[test]
fn infinite_advantage_estimate_is_contained() {
    // Saturated advantage gives +∞, which callers can detect — never NaN.
    let eps = AdvantageEstimator::from_advantage(1.0, 1e-5);
    assert!(eps.is_infinite() && eps > 0.0);
    assert!(!eps.is_nan());
}

#[test]
fn sigmoid_logit_edges_never_nan_in_belief_path() {
    // Extreme evidence drives the belief to exactly 0/1 without NaN, and
    // the ε′ estimator answers with a well-defined ∞.
    let mut t = BeliefTracker::new();
    t.update_llr(1e9);
    assert_eq!(t.belief(), 1.0);
    assert_eq!(
        MaxBeliefEstimator::from_max_belief(t.belief()),
        f64::INFINITY
    );
    let mut t2 = BeliefTracker::new();
    t2.update_llr(-1e9);
    assert_eq!(MaxBeliefEstimator::from_max_belief(t2.belief()), 0.0);
}

#[test]
fn clip_handles_subnormal_gradients() {
    use dp_identifiability::dpsgd::clip_to_norm;
    let mut g = vec![1e-310, -1e-310];
    let pre = clip_to_norm(&mut g, 1.0);
    assert!(pre >= 0.0 && pre.is_finite());
    assert!(g.iter().all(|v| v.is_finite()));
}

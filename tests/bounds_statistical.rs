//! Statistical validation of the paper's bounds on the raw Gaussian
//! mechanism (no neural network): thousands of simulated Exp^DI runs checked
//! against ρ_β, the empirical-δ budget, and the expected advantage ρ_α.

use dp_identifiability::math::GaussianSampler;
use dp_identifiability::prelude::*;
use rand::Rng;

/// Simulate one Exp^DI run of `k` Gaussian releases in `dim` dimensions with
/// centers 0 and μ (‖μ‖ = sensitivity), returning (b, guessed_d, β_k(D)).
fn simulate_trial<R: Rng>(
    rng: &mut R,
    k: usize,
    dim: usize,
    sensitivity: f64,
    sigma: f64,
) -> (bool, bool, f64) {
    let center_d = vec![0.0; dim];
    let mut center_dp = vec![0.0; dim];
    // μ along the diagonal with ‖μ‖ = sensitivity.
    let per_coord = sensitivity / (dim as f64).sqrt();
    for c in center_dp.iter_mut() {
        *c = per_coord;
    }
    let b = rng.gen::<bool>();
    let truth = if b { &center_d } else { &center_dp };
    let mut tracker = BeliefTracker::new();
    let mut gs = GaussianSampler::new();
    for _ in 0..k {
        let noisy: Vec<f64> = truth
            .iter()
            .map(|&c| c + gs.sample(rng, 0.0, sigma))
            .collect();
        tracker.update_gaussian(&noisy, &center_d, &center_dp, sigma);
    }
    let belief_trained = if b {
        tracker.belief()
    } else {
        1.0 - tracker.belief()
    };
    (b, tracker.decide_d(), belief_trained)
}

#[test]
fn belief_bound_violations_stay_within_delta() {
    // ρ_β = 0.9 → ε = 2.197, δ = 1e-3, k = 30, tight sensitivity.
    let (rho_beta_bound, delta, k) = (0.90, 1e-3, 30);
    let epsilon = epsilon_for_rho_beta(rho_beta_bound);
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, k);
    let sensitivity = 2.0;
    let sigma = z * sensitivity;
    let mut rng = seeded_rng(1);
    let trials = 20_000;
    let mut violations = 0;
    for _ in 0..trials {
        let (_, _, belief) = simulate_trial(&mut rng, k, 8, sensitivity, sigma);
        if belief > rho_beta_bound {
            violations += 1;
        }
    }
    let rate = violations as f64 / trials as f64;
    // Theorem 1(ii): the bound holds with probability ≥ 1 − δ; allow 3x
    // slack for Monte-Carlo error at this sample size.
    assert!(
        rate <= 3.0 * delta,
        "violation rate {rate} exceeds delta budget {delta}"
    );
}

#[test]
fn advantage_matches_composed_rho_alpha_when_tight() {
    let (rho_beta_bound, delta, k) = (0.90, 1e-3, 30);
    let epsilon = epsilon_for_rho_beta(rho_beta_bound);
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, k);
    let sensitivity = 1.0;
    let sigma = z * sensitivity;
    let mut rng = seeded_rng(2);
    let trials = 20_000;
    let mut correct = 0;
    for _ in 0..trials {
        let (b, guess, _) = simulate_trial(&mut rng, k, 4, sensitivity, sigma);
        if b == guess {
            correct += 1;
        }
    }
    let advantage = 2.0 * correct as f64 / trials as f64 - 1.0;
    let predicted = rho_alpha_composed(z, k);
    // Monte-Carlo std of the advantage at n = 20000 is about 0.007.
    assert!(
        (advantage - predicted).abs() < 0.03,
        "advantage {advantage} vs composed rho_alpha {predicted}"
    );
    // And the Theorem-2 bound at the total (ε, δ) must also hold.
    assert!(advantage <= rho_alpha(epsilon, delta) + 0.03);
}

#[test]
fn advantage_shrinks_when_noise_scaled_to_loose_global_bound() {
    // Claimed sensitivity 6 (global, bounded), realised distance 2.
    let (delta, k) = (1e-3, 30);
    let epsilon = epsilon_for_rho_beta(0.90);
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, k);
    let realised = 2.0;
    let sigma_loose = z * 6.0;
    let sigma_tight = z * realised;
    let mut rng = seeded_rng(3);
    let trials = 8_000;
    let adv = |sigma: f64, rng: &mut rand::rngs::StdRng| {
        let mut correct = 0;
        for _ in 0..trials {
            let (b, guess, _) = simulate_trial(rng, k, 4, realised, sigma);
            if b == guess {
                correct += 1;
            }
        }
        2.0 * correct as f64 / trials as f64 - 1.0
    };
    let loose = adv(sigma_loose, &mut rng);
    let tight = adv(sigma_tight, &mut rng);
    assert!(
        loose < tight - 0.05,
        "loose scaling should reduce advantage: loose {loose} vs tight {tight}"
    );
}

#[test]
fn single_release_classic_calibration_respects_bounds() {
    // One release calibrated by Eq. 1 at (ε, δ) = (1.1, 1e-5): the belief
    // bound ρ_β(1.1) must hold with probability ≥ 1 − δ and the advantage
    // must stay below ρ_α(1.1, 1e-5).
    let g = DpGuarantee::new(1.1, 1e-5);
    let mech = GaussianMechanism::calibrate(g, 1.0);
    let bound = rho_beta(1.1);
    let mut rng = seeded_rng(4);
    let trials = 30_000;
    let mut correct = 0;
    let mut violations = 0;
    for _ in 0..trials {
        let (b, guess, belief) = simulate_trial(&mut rng, 1, 1, 1.0, mech.sigma);
        if b == guess {
            correct += 1;
        }
        if belief > bound {
            violations += 1;
        }
    }
    assert!(violations as f64 / trials as f64 <= 1e-3);
    let advantage = 2.0 * correct as f64 / trials as f64 - 1.0;
    assert!(
        advantage <= rho_alpha(1.1, 1e-5) + 0.02,
        "advantage {advantage} above rho_alpha {}",
        rho_alpha(1.1, 1e-5)
    );
}

#[test]
fn eps_estimators_recover_target_on_raw_mechanism() {
    // Tight scaling: the ε′-from-LS estimator must reproduce the target ε;
    // the belief estimator converges toward it from below as reps grow.
    let (delta, k) = (1e-3, 30);
    let epsilon = epsilon_for_rho_beta(0.90);
    let z = calibrate_noise_multiplier_closed_form(epsilon, delta, k);
    let sensitivity = 1.5;
    let sigma = z * sensitivity;
    let sigmas = vec![sigma; k];
    let ls = vec![sensitivity; k];
    let eps_ls = LocalSensitivityEstimator::per_trial(&sigmas, &ls, delta, 1e-9);
    assert!(
        (eps_ls - epsilon).abs() / epsilon < 0.05,
        "{eps_ls} vs {epsilon}"
    );

    let mut rng = seeded_rng(5);
    let mut max_belief: f64 = 0.0;
    for _ in 0..2_000 {
        let (_, _, belief) = simulate_trial(&mut rng, k, 4, sensitivity, sigma);
        max_belief = max_belief.max(belief);
    }
    let eps_beta = MaxBeliefEstimator::from_max_belief(max_belief);
    assert!(
        eps_beta > 0.5 * epsilon && eps_beta < 1.4 * epsilon,
        "eps from belief {eps_beta} far from target {epsilon}"
    );
}
